// Resource-attribution profiling: per-span allocation accounting (memprof),
// the phase sampler's folded stacks and RSS-by-span alignment, and the
// solver progress event stream. Allocation-counter assertions are
// conditional on XRING_PROFILE_ALLOC (a CMake option, off by default); the
// RSS sampler and event log have no build-flag dependency and are asserted
// unconditionally.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "milp/branch_and_bound.hpp"
#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/memprof.hpp"
#include "obs/obs.hpp"
#include "obs/sampler.hpp"
#include "xring/synthesizer.hpp"

namespace xring {
namespace {

class ObsProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_ = obs::swap_registry(&reg_);
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::swap_registry(prev_);
  }

  obs::Registry reg_;
  obs::Registry* prev_ = nullptr;
};

// --- memprof -------------------------------------------------------------

TEST(MemProf, RssReadingsArePositiveAndOrdered) {
  const long long rss = obs::memprof::rss_bytes();
  const long long peak = obs::memprof::peak_rss_bytes();
  EXPECT_GT(rss, 0);
  EXPECT_GT(peak, 0);
  // The high-water mark tracks the current footprint, but the two kernel
  // sources (getrusage vs /proc/self/statm) count shared pages differently
  // — allow a generous accounting gap rather than asserting strict order.
  EXPECT_GE(peak + (1 << 20), rss);
}

TEST(MemProf, AllocTrackingMatchesBuildConfiguration) {
#ifdef XRING_PROFILE_ALLOC
  EXPECT_TRUE(obs::memprof::alloc_tracking());
#else
  EXPECT_FALSE(obs::memprof::alloc_tracking());
#endif
}

TEST(MemProf, MarksCaptureAllocationsBetweenOpenAndClose) {
  const obs::memprof::AllocMark mark = obs::memprof::open_mark();
  {
    std::vector<char> block(1 << 20);  // 1 MiB charged to this window
    block[0] = 1;
    block[block.size() - 1] = 1;
  }
  const obs::memprof::AllocDelta delta = obs::memprof::close_mark(mark);
  if (obs::memprof::alloc_tracking()) {
    EXPECT_GE(delta.alloc_bytes, 1 << 20);
    EXPECT_GE(delta.freed_bytes, 1 << 20);
    EXPECT_GE(delta.alloc_count, 1);
    // The vector lived inside the window, so the live-bytes watermark rose
    // by at least its size even though it was freed before close.
    EXPECT_GE(delta.peak_delta_bytes, 1 << 20);
  } else {
    EXPECT_EQ(delta.alloc_bytes, 0);
    EXPECT_EQ(delta.freed_bytes, 0);
    EXPECT_EQ(delta.alloc_count, 0);
    EXPECT_EQ(delta.peak_delta_bytes, 0);
  }
}

TEST_F(ObsProfileTest, SpansChargeAllocationsWhenTrackingIsOn) {
  {
    obs::Span span("allocating");
    std::vector<char> block(1 << 20);
    block[0] = 1;
  }
  const auto spans = reg_.spans();
  ASSERT_EQ(spans.size(), 1u);
  if (obs::memprof::alloc_tracking()) {
    EXPECT_GE(spans[0].alloc_bytes, 1 << 20);
    EXPECT_GE(spans[0].peak_delta_bytes, 1 << 20);
    // flatten() surfaces the per-span aggregate only when traffic exists.
    const auto flat = reg_.flatten();
    EXPECT_GE(flat.at("mem.span.allocating.alloc_bytes"), double(1 << 20));
  } else {
    EXPECT_EQ(spans[0].alloc_bytes, 0);
    EXPECT_EQ(spans[0].peak_delta_bytes, 0);
    // Byte-identical default contract: no mem.span.* keys appear.
    for (const auto& [name, value] : reg_.flatten()) {
      EXPECT_NE(name.compare(0, 4, "mem."), 0) << name << " = " << value;
    }
  }
}

// --- phase sampler -------------------------------------------------------

TEST_F(ObsProfileTest, SamplerRecordsRssSeriesAndFoldedStacks) {
  obs::set_thread_label("test.main");
  obs::PhaseSampler sampler(&reg_, 500);
  sampler.start();
  {
    obs::Span outer("phase_a");
    obs::Span inner("phase_b");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  sampler.stop();
  EXPECT_GE(sampler.samples(), 1);

  // The RSS series exists, is positive and timestamps are monotone.
  const auto series = reg_.series();
  const auto it = series.find("mem.rss_bytes");
  ASSERT_NE(it, series.end());
  ASSERT_FALSE(it->second.empty());
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    EXPECT_GT(it->second[i].value, 0.0);
    if (i > 0) {
      EXPECT_GE(it->second[i].t_us, it->second[i - 1].t_us);
    }
  }

  // The folded stacks carry the open-span path under the thread label.
  const auto counts = sampler.folded_counts();
  ASSERT_FALSE(counts.empty());
  long long nested = 0;
  for (const auto& [path, count] : counts) {
    EXPECT_GT(count, 0);
    if (path == "test.main;phase_a;phase_b") nested += count;
  }
  EXPECT_GT(nested, 0) << sampler.folded();

  // Gauges published at stop: current and peak RSS.
  const auto gauges = reg_.gauges();
  EXPECT_GT(gauges.at("mem.rss_bytes"), 0.0);
  EXPECT_GT(gauges.at("mem.peak_rss_bytes"), 0.0);
}

TEST_F(ObsProfileTest, FoldedOutputIsSortedAndParsable) {
  obs::PhaseSampler sampler(&reg_, 500);
  sampler.start();
  {
    obs::Span s("folded_phase");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  sampler.stop();
  const std::string folded = sampler.folded();
  ASSERT_FALSE(folded.empty());
  std::istringstream in(folded);
  std::string line, prev_path;
  while (std::getline(in, line)) {
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string path = line.substr(0, space);
    EXPECT_GT(std::stoll(line.substr(space + 1)), 0) << line;
    EXPECT_LT(prev_path, path) << "folded paths must be sorted and unique";
    prev_path = path;
  }
}

TEST_F(ObsProfileTest, RssBySpanAlignsSamplesToSpanIntervals) {
  obs::PhaseSampler sampler(&reg_, 500);
  sampler.start();
  {
    obs::Span s("sampled_span");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  sampler.stop();
  const auto rss = obs::rss_by_span(reg_);
  const auto it = rss.find("sampled_span");
  ASSERT_NE(it, rss.end());
  EXPECT_GT(it->second.samples, 0);
  EXPECT_GT(it->second.peak_bytes, 0.0);
  EXPECT_GT(it->second.start_bytes, 0.0);
  EXPECT_GE(it->second.peak_bytes, it->second.start_bytes - 1.0);
}

TEST_F(ObsProfileTest, OpenSpanPathsSeeLiveSpansAcrossThreads) {
  obs::Span here("observer_root");
  std::vector<obs::ThreadPath> seen;
  std::thread worker([&] {
    obs::set_thread_label("test.worker");
    obs::Span deep("worker_span");
    seen = obs::open_span_paths();
  });
  worker.join();
  bool found_worker = false, found_root = false;
  for (const obs::ThreadPath& p : seen) {
    std::string joined = p.label;
    for (const char* n : p.names) {
      joined += ';';
      joined += n;
    }
    if (joined == "test.worker;worker_span") found_worker = true;
    for (const char* n : p.names)
      if (std::string(n) == "observer_root") found_root = true;
  }
  EXPECT_TRUE(found_worker);
  EXPECT_TRUE(found_root);
}

// --- event log -----------------------------------------------------------

TEST_F(ObsProfileTest, EventLogRecordsJsonlWithTimestamps) {
  obs::EventLog log;
  log.record("test.event", {{"value", 3.5}, {"count", 2.0}});
  log.record("test.nan", {{"gap", std::nan("")}});
  EXPECT_EQ(log.size(), 2u);
  std::istringstream in(log.jsonl());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const obs::JsonValue v = obs::parse_json(line);
    ASSERT_EQ(v.kind, obs::JsonValue::Kind::kObject) << line;
    ASSERT_NE(v.find("t_us"), nullptr);
    ASSERT_NE(v.find("kind"), nullptr);
  }
  EXPECT_EQ(lines, 2);
  // NaN fields serialize as JSON null, like the metrics exporters.
  EXPECT_NE(log.jsonl().find("\"gap\":null"), std::string::npos)
      << log.jsonl();
}

TEST_F(ObsProfileTest, EmitIsSilentWithoutALogAndRoutedWithOne) {
  EXPECT_FALSE(obs::events::enabled());
  obs::events::emit("dropped.event", {{"x", 1.0}});  // must not crash
  obs::EventLog log;
  obs::EventLog* prev = obs::events::swap_log(&log);
  EXPECT_TRUE(obs::events::enabled());
  obs::events::emit("routed.event", {{"x", 1.0}});
  obs::events::swap_log(prev);
  EXPECT_FALSE(obs::events::enabled());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_NE(log.jsonl().find("routed.event"), std::string::npos);
}

/// Small set-cover MILP: enough search to emit incumbent and done events.
milp::Model cover_model() {
  milp::Model m;
  const int a = m.add_binary(5), b = m.add_binary(4), c = m.add_binary(3),
            d = m.add_binary(6);
  m.add_constraint({{a, 1.0}, {b, 1.0}}, milp::Sense::kGe, 1.0);
  m.add_constraint({{b, 1.0}, {c, 1.0}}, milp::Sense::kGe, 1.0);
  m.add_constraint({{a, 1.0}, {d, 1.0}}, milp::Sense::kGe, 1.0);
  return m;
}

TEST_F(ObsProfileTest, BranchAndBoundEmitsProgressEvents) {
  obs::EventLog log;
  obs::EventLog* prev = obs::events::swap_log(&log);
  const milp::MipResult result = milp::solve(cover_model());
  obs::events::swap_log(prev);
  ASSERT_EQ(result.status, milp::MipStatus::kOptimal);

  int incumbents = 0, done = 0;
  double final_incumbent = std::nan("");
  std::istringstream in(log.jsonl());
  std::string line;
  while (std::getline(in, line)) {
    const obs::JsonValue v = obs::parse_json(line);
    const std::string kind = v.find("kind")->string;
    if (kind == "milp.incumbent") ++incumbents;
    if (kind == "milp.done") {
      ++done;
      ASSERT_NE(v.find("incumbent"), nullptr);
      final_incumbent = v.find("incumbent")->number;
      ASSERT_NE(v.find("open"), nullptr);
      EXPECT_EQ(v.find("open")->number, 0.0);
    }
  }
  EXPECT_GE(incumbents, 1);
  EXPECT_EQ(done, 1);
  // The stream's final incumbent is the solver's returned objective.
  EXPECT_DOUBLE_EQ(final_incumbent, result.objective);
}

TEST_F(ObsProfileTest, EventStreamIsIdenticalAcrossThreadCounts) {
  auto run = [&](int threads) {
    obs::EventLog log;
    obs::EventLog* prev = obs::events::swap_log(&log);
    milp::BnbOptions opt;
    opt.threads = threads;
    (void)milp::solve(cover_model(), opt);
    obs::events::swap_log(prev);
    // Strip timestamps: wall clock differs, the event sequence must not.
    std::ostringstream stripped;
    std::istringstream in(log.jsonl());
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t kind = line.find("\"kind\"");
      if (kind != std::string::npos) stripped << line.substr(kind) << '\n';
    }
    return stripped.str();
  };
  const std::string serial = run(1);
  const std::string parallel = run(8);
  EXPECT_EQ(serial, parallel);
}

TEST_F(ObsProfileTest, ProgressLineRendersAndTerminates) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  obs::EventLog log;
  log.enable_progress(sink, 0.0);
  log.record("milp.node", {{"nodes", 3.0}, {"open", 2.0}});
  log.record("milp.done", {{"nodes", 5.0}, {"open", 0.0}});
  log.finish_progress();
  std::fflush(sink);
  std::rewind(sink);
  std::string contents;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, sink)) > 0)
    contents.append(buf, got);
  std::fclose(sink);
  EXPECT_NE(contents.find("[progress]"), std::string::npos) << contents;
  EXPECT_NE(contents.find("nodes=5"), std::string::npos) << contents;
  EXPECT_FALSE(contents.empty());
  EXPECT_EQ(contents.back(), '\n');
}

// --- profiling must not perturb results ----------------------------------

TEST(ObsProfileInvariance, ProfiledAndUnprofiledSynthesesAgreeExactly) {
  const netlist::Floorplan fp = netlist::Floorplan::grid(4, 4, 2000);
  SynthesisOptions opt;
  opt.ring.use_milp = false;

  obs::set_enabled(false);
  const SynthesisResult plain = Synthesizer(fp).run(opt);

  obs::Registry reg;
  obs::Registry* prev = obs::swap_registry(&reg);
  obs::set_enabled(true);
  obs::PhaseSampler sampler(&reg, 500);
  obs::EventLog log;
  obs::EventLog* prev_log = obs::events::swap_log(&log);
  sampler.start();
  const SynthesisResult profiled = Synthesizer(fp).run(opt);
  sampler.stop();
  obs::events::swap_log(prev_log);
  obs::set_enabled(false);
  obs::swap_registry(prev);

  EXPECT_EQ(plain.metrics.wavelengths, profiled.metrics.wavelengths);
  EXPECT_EQ(plain.metrics.waveguides, profiled.metrics.waveguides);
  EXPECT_EQ(plain.metrics.noisy_signals, profiled.metrics.noisy_signals);
  EXPECT_EQ(plain.metrics.il_star_worst_db, profiled.metrics.il_star_worst_db);
  EXPECT_EQ(plain.metrics.total_power_w, profiled.metrics.total_power_w);
}

}  // namespace
}  // namespace xring
