// Scale machinery of the ring-construction MILP: presolve/postsolve
// round-trips, the separated (cutting-plane) conflict mode, reflective
// symmetry breaking, cover-cut validity, and the budgeted LNS — each pinned
// against the exhaustive paper-literal formulation or an exact reference
// implementation.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "milp/branch_and_bound.hpp"
#include "milp/cuts.hpp"
#include "milp/presolve.hpp"
#include "netlist/floorplan.hpp"
#include "ring/builder.hpp"
#include "ring/heuristic.hpp"
#include "ring/tsp_model.hpp"

namespace xring {
namespace {

using netlist::Floorplan;
using netlist::Node;
using netlist::NodeId;

/// Deterministic congruential stream for seeded-random layouts.
class Lcg {
 public:
  explicit Lcg(unsigned seed) : state_(seed * 2654435761u + 12345u) {}
  unsigned next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_ >> 8;
  }

 private:
  unsigned state_;
};

/// `n` nodes on distinct lattice positions of a coarse grid, seeded.
Floorplan random_floorplan(int n, unsigned seed) {
  Lcg rng(seed);
  std::vector<std::pair<int, int>> cells;
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) cells.emplace_back(x, y);
  }
  // Fisher-Yates with the seeded stream, then take the first n cells.
  for (std::size_t i = cells.size() - 1; i > 0; --i) {
    std::swap(cells[i], cells[rng.next() % (i + 1)]);
  }
  std::vector<Node> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(
        {i, {cells[i].first * 1500, cells[i].second * 1500}, ""});
  }
  return Floorplan(std::move(nodes), 8 * 1500, 8 * 1500);
}

// ---------------------------------------------------------------------------
// Presolve / postsolve

TEST(Presolve, SingletonRowsFixAndPostsolveRestores) {
  // x0 forced to 1 by a singleton >=, x1 forced to 0 by a singleton <=;
  // x2 remains free with objective pull toward 1.
  milp::Model m;
  m.set_maximize(true);
  const int x0 = m.add_binary(1.0);
  const int x1 = m.add_binary(5.0);
  const int x2 = m.add_binary(3.0);
  m.add_constraint({{x0, 1.0}}, milp::Sense::kGe, 1.0);
  m.add_constraint({{x1, 1.0}}, milp::Sense::kLe, 0.0);
  m.add_constraint({{x2, 1.0}}, milp::Sense::kLe, 1.0);  // redundant

  const milp::Presolved pre = milp::presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.fixed_variables, 2);
  EXPECT_LT(pre.reduced.num_variables(), m.num_variables());

  // Postsolve re-inserts the fixed values verbatim in the original space.
  std::vector<double> reduced_x(pre.reduced.num_variables(), 1.0);
  const std::vector<double> full = pre.postsolve(reduced_x);
  ASSERT_EQ(static_cast<int>(full.size()), m.num_variables());
  EXPECT_EQ(full[x0], 1.0);
  EXPECT_EQ(full[x1], 0.0);
  EXPECT_EQ(full[x2], 1.0);
}

TEST(Presolve, DetectsInfeasibleBounds) {
  milp::Model m;
  const int x = m.add_binary(1.0);
  m.add_constraint({{x, 1.0}}, milp::Sense::kGe, 1.0);
  m.add_constraint({{x, 1.0}}, milp::Sense::kLe, 0.0);
  EXPECT_TRUE(milp::presolve(m).infeasible);
}

TEST(Presolve, CoefficientTighteningKeepsOptimum) {
  // 5x + y <= 5 tightens to x + y <= 1 (same 0/1 solutions, tighter LP).
  milp::Model m;
  m.set_maximize(true);
  const int x = m.add_binary(4.0);
  const int y = m.add_binary(1.0);
  m.add_constraint({{x, 5.0}, {y, 1.0}}, milp::Sense::kLe, 5.0);
  const milp::Presolved pre = milp::presolve(m);
  EXPECT_GE(pre.tightened_coefs, 1);

  const milp::MipResult r = milp::solve(m);
  ASSERT_EQ(r.status, milp::MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-9);  // x = 1, y = 0 remains optimal
}

TEST(Presolve, SolveMatchesWithAndWithout) {
  // Seeded random binary programs: presolve on and off must agree on
  // status and objective exactly.
  for (unsigned seed = 1; seed <= 6; ++seed) {
    Lcg rng(seed);
    milp::Model m;
    const int nv = 8;
    for (int v = 0; v < nv; ++v) {
      m.add_binary(static_cast<double>(rng.next() % 9) - 4.0);
    }
    for (int c = 0; c < 6; ++c) {
      milp::Terms t;
      for (int v = 0; v < nv; ++v) {
        const int coef = static_cast<int>(rng.next() % 5) - 2;
        if (coef != 0) t.emplace_back(v, static_cast<double>(coef));
      }
      if (t.empty()) continue;
      m.add_constraint(std::move(t), milp::Sense::kLe,
                       static_cast<double>(rng.next() % 4));
    }
    milp::BnbOptions with, without;
    with.presolve = true;
    without.presolve = false;
    const milp::MipResult a = milp::solve(m, with);
    const milp::MipResult b = milp::solve(m, without);
    ASSERT_EQ(a.status, b.status) << "seed " << seed;
    if (a.status == milp::MipStatus::kOptimal) {
      EXPECT_NEAR(a.objective, b.objective, 1e-9) << "seed " << seed;
    }
  }
}

TEST(Presolve, FullyFixedModelSolvesWithoutSearch) {
  milp::Model m;
  const int x = m.add_binary(2.0);
  const int y = m.add_binary(3.0);
  m.add_constraint({{x, 1.0}}, milp::Sense::kGe, 1.0);
  m.add_constraint({{y, 1.0}}, milp::Sense::kLe, 0.0);
  const milp::MipResult r = milp::solve(m);
  ASSERT_EQ(r.status, milp::MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-12);
  EXPECT_EQ(r.x[x], 1.0);
  EXPECT_EQ(r.x[y], 0.0);
  EXPECT_EQ(r.nodes, 0);
}

// ---------------------------------------------------------------------------
// Cover cuts

TEST(Cuts, CoverCutsValidForAllIntegerFeasiblePoints) {
  // Knapsack 3a + 4b + 2c + 5d <= 6; enumerate all feasible 0/1 points and
  // check every cut separated from a fractional LP point holds on each.
  milp::Model m;
  m.set_maximize(true);
  const double coefs[4] = {3, 4, 2, 5};
  for (double c : coefs) m.add_binary(c);  // objective = weight (irrelevant)
  m.add_constraint({{0, 3.0}, {1, 4.0}, {2, 2.0}, {3, 5.0}},
                   milp::Sense::kLe, 6.0);

  const std::vector<double> frac = {0.9, 0.8, 0.1, 0.0};
  const std::vector<milp::Constraint> cuts = milp::separate_cover_cuts(m, frac);
  ASSERT_FALSE(cuts.empty());
  for (int mask = 0; mask < 16; ++mask) {
    double weight = 0.0;
    for (int v = 0; v < 4; ++v) weight += ((mask >> v) & 1) * coefs[v];
    if (weight > 6.0) continue;  // not feasible for the knapsack
    for (const milp::Constraint& cut : cuts) {
      double lhs = 0.0;
      for (const auto& [v, a] : cut.terms) lhs += ((mask >> v) & 1) * a;
      EXPECT_LE(lhs, cut.rhs + 1e-9) << "cut violated by mask " << mask;
    }
  }
  // And the separated cut does cut off the fractional point.
  double lhs = 0.0;
  for (const auto& [v, a] : cuts.front().terms) lhs += frac[v] * a;
  EXPECT_GT(lhs, cuts.front().rhs + 1e-6);
}

// ---------------------------------------------------------------------------
// Conflict-mode equivalence and symmetry breaking

milp::MipResult solve_tsp(const Floorplan& fp, const ring::ConflictOracle& oracle,
                          ring::ConflictMode mode, bool symmetry) {
  ring::TspModel tsp(fp, oracle, mode);
  const std::vector<NodeId> heuristic = ring::heuristic_tour(fp, oracle);
  if (symmetry) tsp.add_symmetry_breaking(heuristic);
  milp::BnbOptions bnb;
  bnb.time_limit_seconds = 60.0;
  bnb.lazy_handler = tsp.lazy_handler();
  bnb.cut_separator = tsp.cut_separator();
  if (ring::tour_conflicts(heuristic, oracle) == 0) {
    bnb.warm_start = tsp.warm_start_from(heuristic);
  }
  return milp::solve(tsp.model(), bnb);
}

TEST(ConflictModes, AllThreeModesAgreeOnTheOptimum) {
  std::vector<Floorplan> layouts;
  layouts.push_back(Floorplan::standard(8));
  layouts.push_back(Floorplan::standard(16));
  layouts.push_back(Floorplan::grid(4, 4, 2000));
  for (unsigned seed = 1; seed <= 3; ++seed) {
    layouts.push_back(random_floorplan(10, seed));
  }
  for (const Floorplan& fp : layouts) {
    const ring::ConflictOracle oracle(fp);
    const milp::MipResult ex =
        solve_tsp(fp, oracle, ring::ConflictMode::kExhaustive, false);
    const milp::MipResult lazy =
        solve_tsp(fp, oracle, ring::ConflictMode::kLazy, false);
    const milp::MipResult sep =
        solve_tsp(fp, oracle, ring::ConflictMode::kSeparated, false);
    ASSERT_EQ(ex.status, milp::MipStatus::kOptimal);
    ASSERT_EQ(lazy.status, milp::MipStatus::kOptimal);
    ASSERT_EQ(sep.status, milp::MipStatus::kOptimal);
    EXPECT_NEAR(lazy.objective, ex.objective, 1e-9);
    EXPECT_NEAR(sep.objective, ex.objective, 1e-9);
  }
}

TEST(Symmetry, BreakingPreservesTheTourExactly) {
  // With the orientation row aligned to the heuristic warm start, the
  // returned selection must be byte-identical with and without the row on
  // the paper's layouts (the warm start is optimal there, so both searches
  // return it verbatim) — the downstream ring direction is untouched.
  for (const int n : {8, 16, 32}) {
    const Floorplan fp = Floorplan::standard(n);
    const ring::ConflictOracle oracle(fp);
    const milp::MipResult plain =
        solve_tsp(fp, oracle, ring::ConflictMode::kLazy, false);
    const milp::MipResult broken =
        solve_tsp(fp, oracle, ring::ConflictMode::kLazy, true);
    ASSERT_EQ(plain.status, milp::MipStatus::kOptimal);
    ASSERT_EQ(broken.status, milp::MipStatus::kOptimal);
    EXPECT_NEAR(broken.objective, plain.objective, 1e-9);
    EXPECT_EQ(plain.x, broken.x) << "n = " << n;
  }
}

TEST(Symmetry, RejectsTheReversedWarmStart) {
  // The orientation row must make the mirror of the reference tour
  // infeasible: warm-starting with it, the solver may not return it.
  const Floorplan fp = Floorplan::standard(8);
  const ring::ConflictOracle oracle(fp);
  ring::TspModel tsp(fp, oracle, ring::ConflictMode::kLazy);
  const std::vector<NodeId> heuristic = ring::heuristic_tour(fp, oracle);
  tsp.add_symmetry_breaking(heuristic);
  std::vector<NodeId> reversed(heuristic.rbegin(), heuristic.rend());
  milp::BnbOptions bnb;
  bnb.lazy_handler = tsp.lazy_handler();
  bnb.warm_start = tsp.warm_start_from(reversed);
  const milp::MipResult r = milp::solve(tsp.model(), bnb);
  ASSERT_EQ(r.status, milp::MipStatus::kOptimal);
  EXPECT_NE(r.x, *bnb.warm_start);
  // ... but the un-reversed optimum is still reachable at the same length.
  EXPECT_NEAR(r.objective,
              solve_tsp(fp, oracle, ring::ConflictMode::kLazy, false).objective,
              1e-9);
}

TEST(TspCuts, SeparatorRowsHoldOnTheExhaustiveOptimum) {
  // Rows separated from any fractional point must be valid for the true
  // optimum (they are rows of the exhaustive formulation).
  const Floorplan fp = random_floorplan(9, 7);
  const ring::ConflictOracle oracle(fp);
  ring::TspModel tsp(fp, oracle, ring::ConflictMode::kSeparated);
  const milp::MipResult opt =
      solve_tsp(fp, oracle, ring::ConflictMode::kExhaustive, false);
  ASSERT_EQ(opt.status, milp::MipStatus::kOptimal);

  // A synthetic fractional point: the optimum diluted plus mass on a
  // conflicting pair, to give the separator something to cut.
  std::vector<double> frac(opt.x);
  for (double& v : frac) v = 0.4 + 0.4 * v;
  const auto cuts = tsp.cut_separator()(frac);
  for (const milp::Constraint& c : cuts) {
    double lhs = 0.0;
    for (const auto& [v, a] : c.terms) lhs += opt.x[v] * a;
    if (c.sense == milp::Sense::kLe) {
      EXPECT_LE(lhs, c.rhs + 1e-9);
    } else if (c.sense == milp::Sense::kGe) {
      EXPECT_GE(lhs, c.rhs - 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental two_opt versus the historical full-recompute reference

geom::Coord penalized(const std::vector<NodeId>& order, const Floorplan& fp,
                      const ring::ConflictOracle& oracle,
                      const ring::HeuristicOptions& opt) {
  return ring::tour_length(order, fp) +
         opt.conflict_penalty * ring::tour_conflicts(order, oracle);
}

/// The pre-optimization two_opt, verbatim: full penalized-cost recompute
/// per candidate move, first improvement.
void reference_two_opt(std::vector<NodeId>& order, const Floorplan& fp,
                       const ring::ConflictOracle& oracle,
                       const ring::HeuristicOptions& options) {
  const int n = static_cast<int>(order.size());
  if (n < 3) return;
  geom::Coord cost = penalized(order, fp, oracle, options);
  for (int round = 0; round < options.max_two_opt_rounds; ++round) {
    bool improved = false;
    for (int i = 0; i < n - 1; ++i) {
      for (int j = i + 1; j < n; ++j) {
        std::vector<NodeId> candidate = order;
        std::reverse(candidate.begin() + i, candidate.begin() + j + 1);
        const geom::Coord c = penalized(candidate, fp, oracle, options);
        if (c < cost) {
          order = std::move(candidate);
          cost = c;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
}

TEST(TwoOpt, IncrementalMatchesReferenceMoveForMove) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const Floorplan fp = random_floorplan(12, seed);
    const ring::ConflictOracle oracle(fp);
    std::vector<NodeId> a(fp.size());
    std::iota(a.begin(), a.end(), 0);
    // Seeded shuffle so the runs start from varied (bad) tours.
    Lcg rng(seed + 100);
    for (std::size_t i = a.size() - 1; i > 0; --i) {
      std::swap(a[i], a[rng.next() % (i + 1)]);
    }
    std::vector<NodeId> b = a;
    ring::two_opt(a, fp, oracle);
    reference_two_opt(b, fp, oracle, {});
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Budgeted LNS

TEST(Lns, DeterministicAndConflictFreeOnGrids) {
  const Floorplan fp = Floorplan::grid(6, 8, 2000);
  const ring::ConflictOracle oracle(fp);
  ring::LnsOptions opt;
  opt.budget_seconds = 60.0;
  const ring::LnsResult a = ring::lns_tour(fp, oracle, opt);
  const ring::LnsResult b = ring::lns_tour(fp, oracle, opt);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.length_um, b.length_um);
  EXPECT_EQ(a.repairs_accepted, b.repairs_accepted);
  EXPECT_EQ(a.conflicts, 0);
  EXPECT_FALSE(a.budget_exhausted);
  // A valid permutation of all nodes.
  std::vector<NodeId> sorted = a.order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<NodeId> expect(fp.size());
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(sorted, expect);
  // Certified against the degree bound: the grid optimum is the bound.
  EXPECT_EQ(a.length_um, ring::tour_lower_bound(fp));
}

TEST(Lns, RepairsImproveARandomLayout) {
  // On irregular layouts the polish alone is generally not optimal; the
  // budgeted build must never be worse than the plain heuristic and must
  // stay conflict-free.
  for (unsigned seed = 2; seed <= 4; ++seed) {
    const Floorplan fp = random_floorplan(14, seed);
    const ring::ConflictOracle oracle(fp);
    ring::LnsOptions opt;
    opt.budget_seconds = 60.0;
    opt.window = 8;
    const ring::LnsResult r = ring::lns_tour(fp, oracle, opt);
    EXPECT_EQ(r.conflicts, 0) << "seed " << seed;
    EXPECT_GE(r.length_um, ring::tour_lower_bound(fp));
    EXPECT_GT(r.repairs_attempted, 0);
  }
}

TEST(Builder, BudgetedModeReportsACertifiedGap) {
  const Floorplan fp = Floorplan::grid(4, 8, 2000);
  ring::RingBuildOptions opt;
  opt.lns_budget_seconds = 60.0;
  const ring::RingBuildResult r = ring::build_ring(fp, opt);
  EXPECT_EQ(r.mip_status, milp::MipStatus::kFeasible);
  EXPECT_GT(r.lower_bound_um, 0);
  EXPECT_GE(r.certified_gap, 0.0);
  EXPECT_LE(r.certified_gap, 0.05);
  EXPECT_EQ(r.geometry.crossings, 0);
}

TEST(Builder, ExactModeGapIsZeroAtTheProvenOptimum) {
  const Floorplan fp = Floorplan::standard(16);
  ring::RingBuildOptions opt;
  opt.conflict_mode = ring::ConflictMode::kSeparated;
  opt.or_opt_polish = true;
  const ring::RingBuildResult r = ring::build_ring(fp, opt);
  ASSERT_EQ(r.mip_status, milp::MipStatus::kOptimal);
  EXPECT_GE(r.lower_bound_um, ring::tour_lower_bound(fp));
  if (r.subcycles_before_merge == 1) {
    EXPECT_EQ(r.certified_gap, 0.0);
  }
}

}  // namespace
}  // namespace xring
