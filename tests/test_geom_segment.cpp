#include <gtest/gtest.h>

#include "geom/segment.hpp"

namespace xring::geom {
namespace {

Segment h(Coord x1, Coord x2, Coord y) { return {{x1, y}, {x2, y}}; }
Segment v(Coord x, Coord y1, Coord y2) { return {{x, y1}, {x, y2}}; }

TEST(Segment, OrientationPredicates) {
  EXPECT_TRUE(h(0, 5, 2).horizontal());
  EXPECT_FALSE(h(0, 5, 2).vertical());
  EXPECT_TRUE(v(3, 0, 5).vertical());
  EXPECT_FALSE(v(3, 0, 5).horizontal());
  const Segment degenerate{{1, 1}, {1, 1}};
  EXPECT_TRUE(degenerate.degenerate());
  EXPECT_FALSE(degenerate.horizontal());
  EXPECT_FALSE(degenerate.vertical());
}

TEST(Segment, Length) {
  EXPECT_EQ(h(0, 5, 2).length(), 5);
  EXPECT_EQ(v(3, -2, 5).length(), 7);
  EXPECT_EQ((Segment{{1, 1}, {1, 1}}).length(), 0);
}

TEST(Segment, PerpendicularCross) {
  // Vertical through the middle of a horizontal: a true crossing.
  EXPECT_EQ(classify(h(0, 10, 5), v(5, 0, 10)), Touch::kCross);
  EXPECT_TRUE(crosses(h(0, 10, 5), v(5, 0, 10)));
  EXPECT_TRUE(crosses(v(5, 0, 10), h(0, 10, 5)));
}

TEST(Segment, PerpendicularTouchAtEndpointIsNotCross) {
  // The vertical ends exactly on the horizontal: a T-joint, not a crossing.
  EXPECT_EQ(classify(h(0, 10, 5), v(5, 5, 10)), Touch::kEndpoint);
  EXPECT_FALSE(crosses(h(0, 10, 5), v(5, 5, 10)));
  // Corner joint (L): endpoints meet.
  EXPECT_EQ(classify(h(0, 10, 0), v(10, 0, 10)), Touch::kEndpoint);
}

TEST(Segment, PerpendicularDisjoint) {
  EXPECT_EQ(classify(h(0, 10, 5), v(20, 0, 10)), Touch::kNone);
  EXPECT_EQ(classify(h(0, 10, 5), v(5, 6, 10)), Touch::kNone);
}

TEST(Segment, CollinearOverlap) {
  EXPECT_EQ(classify(h(0, 10, 5), h(5, 15, 5)), Touch::kOverlap);
  EXPECT_EQ(classify(v(2, 0, 4), v(2, 2, 8)), Touch::kOverlap);
  // Containment is overlap too.
  EXPECT_EQ(classify(h(0, 10, 5), h(2, 8, 5)), Touch::kOverlap);
}

TEST(Segment, CollinearEndToEnd) {
  // Sharing exactly one endpoint along the same line.
  EXPECT_EQ(classify(h(0, 5, 2), h(5, 10, 2)), Touch::kEndpoint);
}

TEST(Segment, ParallelDisjoint) {
  EXPECT_EQ(classify(h(0, 5, 2), h(0, 5, 3)), Touch::kNone);
  EXPECT_EQ(classify(v(0, 0, 5), v(1, 0, 5)), Touch::kNone);
}

TEST(Segment, DegenerateInteractions) {
  const Segment point{{5, 5}, {5, 5}};
  // A point is its own endpoint, so any touch it makes is an endpoint touch
  // — never a transversal crossing.
  EXPECT_EQ(classify(point, h(0, 10, 5)), Touch::kEndpoint);
  EXPECT_EQ(classify(point, h(5, 10, 5)), Touch::kEndpoint);
  EXPECT_EQ(classify(point, h(0, 10, 6)), Touch::kNone);
  EXPECT_FALSE(crosses(point, h(0, 10, 5)));
}

TEST(Segment, Contains) {
  EXPECT_TRUE(contains(h(0, 10, 5), {5, 5}));
  EXPECT_TRUE(contains(h(0, 10, 5), {0, 5}));
  EXPECT_FALSE(contains(h(0, 10, 5), {5, 6}));
  EXPECT_TRUE(contains_interior(h(0, 10, 5), {5, 5}));
  EXPECT_FALSE(contains_interior(h(0, 10, 5), {0, 5}));
  EXPECT_FALSE(contains_interior(h(0, 10, 5), {10, 5}));
}

TEST(Segment, CrossingPoint) {
  const auto p = crossing_point(h(0, 10, 5), v(3, 0, 10));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Point{3, 5}));
  EXPECT_FALSE(crossing_point(h(0, 10, 5), v(30, 0, 10)).has_value());
  EXPECT_FALSE(crossing_point(h(0, 10, 5), h(0, 10, 6)).has_value());
}

TEST(Segment, CrossSymmetry) {
  // classify must be symmetric in its arguments for every configuration.
  const Segment cases[] = {h(0, 10, 5), v(5, 0, 10),  v(5, 5, 10),
                           h(5, 15, 5), h(0, 10, 6),  {{5, 5}, {5, 5}}};
  for (const auto& a : cases) {
    for (const auto& b : cases) {
      EXPECT_EQ(classify(a, b), classify(b, a));
    }
  }
}

}  // namespace
}  // namespace xring::geom
