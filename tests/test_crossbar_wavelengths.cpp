#include <gtest/gtest.h>

#include <set>

#include "crossbar/topology.hpp"
#include "lp/simplex.hpp"

namespace xring::crossbar {
namespace {

/// WRONoC wavelength-routing correctness: from any single sender, and into
/// any single receiver, all signals use distinct wavelengths in range.
void expect_valid_scheme(const Topology& t) {
  const int n = t.nodes();
  for (NodeId i = 0; i < n; ++i) {
    std::set<int> from_i, into_i;
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const int tx = t.wavelength(i, j);
      const int rx = t.wavelength(j, i);
      EXPECT_GE(tx, 0);
      EXPECT_LT(tx, t.wavelengths());
      EXPECT_TRUE(from_i.insert(tx).second)
          << t.name() << ": sender " << i << " reuses wavelength " << tx;
      EXPECT_TRUE(into_i.insert(rx).second)
          << t.name() << ": receiver " << i << " reuses wavelength " << rx;
    }
  }
}

class WavelengthScheme : public ::testing::TestWithParam<int> {};

TEST_P(WavelengthScheme, LambdaRouterIsValid) {
  expect_valid_scheme(LambdaRouter(GetParam()));
}

TEST_P(WavelengthScheme, GworIsValid) {
  expect_valid_scheme(Gwor(GetParam()));
}

TEST_P(WavelengthScheme, LightIsValid) {
  expect_valid_scheme(Light(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, WavelengthScheme,
                         ::testing::Values(4, 8, 16, 32));

TEST(WavelengthScheme, LambdaRouterDiagonals) {
  const LambdaRouter t(8);
  EXPECT_EQ(t.wavelength(0, 1), 1);
  EXPECT_EQ(t.wavelength(3, 5), 0);
  EXPECT_EQ(t.wavelength(7, 6), 5);
}

TEST(WavelengthScheme, DistanceSchemesMatchGworAndLight) {
  const Gwor g(8);
  const Light l(8);
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = 0; j < 8; ++j) {
      if (i == j) continue;
      EXPECT_EQ(g.wavelength(i, j), l.wavelength(i, j));
      EXPECT_EQ(g.wavelength(i, j), (j - i + 8) % 8 - 1);
    }
  }
}

}  // namespace
}  // namespace xring::crossbar

// --- LP duality properties (placed here to avoid another tiny binary) ----
namespace xring::lp {
namespace {

TEST(LpDuals, StrongDualityOnTextbookLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18; optimum 36.
  Problem p;
  p.set_maximize(true);
  const int x = p.add_variable(0, kInfinity, 3.0);
  const int y = p.add_variable(0, kInfinity, 5.0);
  p.add_constraint({{x, 1.0}}, Sense::kLe, 4.0);
  p.add_constraint({{y, 2.0}}, Sense::kLe, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, Sense::kLe, 18.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  ASSERT_EQ(s.duals.size(), 3u);
  // Known duals of this classic: (0, 1.5, 1).
  EXPECT_NEAR(s.duals[0], 0.0, 1e-6);
  EXPECT_NEAR(s.duals[1], 1.5, 1e-6);
  EXPECT_NEAR(s.duals[2], 1.0, 1e-6);
  // Strong duality: b'y == optimum.
  EXPECT_NEAR(4 * s.duals[0] + 12 * s.duals[1] + 18 * s.duals[2], 36.0, 1e-6);
}

TEST(LpDuals, ReducedCostsVanishOnBasicVariables) {
  Problem p;
  p.set_maximize(true);
  const int x = p.add_variable(0, kInfinity, 3.0);
  const int y = p.add_variable(0, kInfinity, 5.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 10.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  // y (the better coefficient) is basic at 10: zero reduced cost; x is
  // nonbasic with negative reduced cost (maximization sense: increasing x
  // would lose 2 per unit after the constraint trade).
  EXPECT_NEAR(s.reduced_costs[y], 0.0, 1e-6);
  EXPECT_NEAR(s.reduced_costs[x], -2.0, 1e-6);
}

TEST(LpDuals, DualOfEqualityRowCanTakeEitherSign) {
  // min x + 2y s.t. x + y = 5 → all mass on x; dual of the row is 1.
  Problem p;
  const int x = p.add_variable(0, kInfinity, 1.0);
  const int y = p.add_variable(0, kInfinity, 2.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEq, 5.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-6);
  EXPECT_NEAR(s.duals[0], 1.0, 1e-6);
  EXPECT_NEAR(s.reduced_costs[y], 1.0, 1e-6);  // 2 - 1
}

}  // namespace
}  // namespace xring::lp
