// Unit tests of the obs layer: span nesting and ordering, metric
// arithmetic, the disabled-mode no-recording path, and the JSON/CSV
// exporter round trips.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <thread>

#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "report/run_report.hpp"

namespace xring::obs {
namespace {

/// Installs a fresh registry and enables tracing for one test, restoring
/// both on destruction so tests never leak state into each other.
class ObsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_ = swap_registry(&reg_);
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    swap_registry(prev_);
  }

  Registry reg_;
  Registry* prev_ = nullptr;
};

using ObsSpans = ObsFixture;
using ObsMetrics = ObsFixture;
using ObsExport = ObsFixture;

TEST_F(ObsSpans, RecordsNestedSpansWithDepthsAndContainment) {
  {
    Span outer("outer");
    {
      Span middle("middle");
      Span inner("inner");
    }
    Span sibling("sibling");
  }
  const std::vector<SpanEvent> spans = reg_.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Spans close innermost-first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "middle");
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[3].name, "outer");
  EXPECT_EQ(spans[0].depth, 2);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].depth, 1);
  EXPECT_EQ(spans[3].depth, 0);
  // Wall-clock containment: children start no earlier and end no later than
  // the parent (tolerance for clock rounding).
  const SpanEvent& outer = spans[3];
  for (int child : {0, 1, 2}) {
    EXPECT_GE(spans[child].start_us, outer.start_us - 1.0);
    EXPECT_LE(spans[child].start_us + spans[child].dur_us,
              outer.start_us + outer.dur_us + 1.0);
  }
}

TEST_F(ObsSpans, CloseIsIdempotent) {
  Span span("once");
  span.close();
  span.close();
  EXPECT_EQ(reg_.spans().size(), 1u);
  EXPECT_GE(span.elapsed_seconds(), 0.0);  // still usable after close
}

TEST_F(ObsSpans, SpanAggregatesAppearInFlatten) {
  { Span a("step"); }
  { Span b("step"); }
  const auto flat = reg_.flatten();
  EXPECT_EQ(flat.at("span.step.count"), 2.0);
  EXPECT_GE(flat.at("span.step.total_s"), 0.0);
}

TEST_F(ObsMetrics, CounterArithmetic) {
  Counter& c = reg_.counter("hits");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  EXPECT_EQ(reg_.counters().at("hits"), 42);
  // Same name resolves to the same counter.
  reg_.counter("hits").add(8);
  EXPECT_EQ(c.value(), 50);
}

TEST_F(ObsMetrics, GaugeLastWriteWins) {
  reg_.gauge("level").set(3.5);
  reg_.gauge("level").set(-1.25);
  EXPECT_EQ(reg_.gauges().at("level"), -1.25);
}

TEST_F(ObsMetrics, HistogramStats) {
  Histogram& h = reg_.histogram("lat");
  for (const double v : {4.0, 1.0, 7.0, 2.0}) h.observe(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4);
  EXPECT_EQ(s.sum, 14.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 7.0);
  EXPECT_EQ(s.mean(), 3.5);
  const auto flat = reg_.flatten();
  EXPECT_EQ(flat.at("lat.count"), 4.0);
  EXPECT_EQ(flat.at("lat.mean"), 3.5);
}

TEST_F(ObsMetrics, SeriesKeepsOrderAndTimestamps) {
  reg_.append_series("inc", 10.0);
  reg_.append_series("inc", 7.5);
  reg_.append_series("inc", 3.0);
  const auto series = reg_.series().at("inc");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].value, 10.0);
  EXPECT_EQ(series[2].value, 3.0);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].t_us, series[i - 1].t_us);
  }
  EXPECT_EQ(reg_.flatten().at("inc.last"), 3.0);
}

TEST_F(ObsMetrics, ResetClearsEverything) {
  reg_.counter("a").add();
  reg_.gauge("b").set(1);
  { Span s("c"); }
  reg_.append_series("d", 1.0);
  diagnose(Severity::kWarning, "e.code", "message");
  reg_.reset();
  EXPECT_TRUE(reg_.flatten().empty());
  EXPECT_TRUE(reg_.spans().empty());
  EXPECT_TRUE(reg_.diagnostics().empty());
}

TEST_F(ObsMetrics, EmptyHistogramFlattensToCountOnly) {
  // An observed-but-empty histogram must not fabricate min/max/sum/mean
  // zeros that read as real observations; only .count=0 is emitted.
  reg_.histogram("never_observed");
  const auto flat = reg_.flatten();
  EXPECT_EQ(flat.at("never_observed.count"), 0.0);
  EXPECT_EQ(flat.count("never_observed.min"), 0u);
  EXPECT_EQ(flat.count("never_observed.max"), 0u);
  EXPECT_EQ(flat.count("never_observed.sum"), 0u);
  EXPECT_EQ(flat.count("never_observed.mean"), 0u);
}

TEST_F(ObsMetrics, SingleSampleHistogramStats) {
  reg_.histogram("one").observe(5.0);
  const auto flat = reg_.flatten();
  EXPECT_EQ(flat.at("one.count"), 1.0);
  EXPECT_EQ(flat.at("one.min"), 5.0);
  EXPECT_EQ(flat.at("one.max"), 5.0);
  EXPECT_EQ(flat.at("one.mean"), 5.0);
}

TEST_F(ObsMetrics, DiagnosticsRecordSeverityCodeAndContext) {
  diagnose(Severity::kError, "milp.infeasible", "no feasible tour",
           {{"nodes", "14"}});
  diagnose(Severity::kWarning, "mapping.wavelength_conflict", "overflow");
  const auto diags = reg_.diagnostics();
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].code, "milp.infeasible");
  ASSERT_EQ(diags[0].context.size(), 1u);
  EXPECT_EQ(diags[0].context[0].first, "nodes");
  EXPECT_GE(diags[1].t_us, diags[0].t_us);
  // Severity tallies surface in flatten for the metrics exporters.
  const auto flat = reg_.flatten();
  EXPECT_EQ(flat.at("diag.error"), 1.0);
  EXPECT_EQ(flat.at("diag.warning"), 1.0);
  EXPECT_EQ(flat.count("diag.info"), 0u);
}

TEST(ObsDiagnostics, NotRecordedWhenDisabled) {
  Registry reg;
  Registry* prev = swap_registry(&reg);
  set_enabled(false);
  diagnose(Severity::kError, "code", "message");
  EXPECT_TRUE(reg.diagnostics().empty());
  swap_registry(prev);
}

TEST_F(ObsMetrics, CountersAreThreadSafe) {
  constexpr int kThreads = 8, kPerThread = 10000;
  Counter& c = reg_.counter("shared");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(ObsMetrics, SpansAreThreadSafe) {
  constexpr int kThreads = 4, kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) Span span("worker");
    });
  }
  for (std::thread& t : threads) t.join();
  const auto spans = reg_.spans();
  EXPECT_EQ(spans.size(), std::size_t{kThreads} * kPerThread);
  // Each thread nests independently: every span is a root on its thread.
  for (const SpanEvent& ev : spans) EXPECT_EQ(ev.depth, 0);
}

TEST(ObsDisabled, NothingIsRecorded) {
  Registry reg;
  Registry* prev = swap_registry(&reg);
  set_enabled(false);
  {
    Span outer("outer");
    Span inner("inner");
    EXPECT_GE(outer.elapsed_seconds(), 0.0);  // timing still works
    // Instrumentation sites guard on enabled() before touching the
    // registry; mimic the pipeline's pattern.
    if (enabled()) registry().counter("milp.nodes").add(5);
  }
  EXPECT_TRUE(reg.spans().empty());
  EXPECT_TRUE(reg.flatten().empty());
  swap_registry(prev);
}

TEST(ObsDisabled, ReenablingResumesRecording) {
  Registry reg;
  Registry* prev = swap_registry(&reg);
  set_enabled(false);
  { Span s("off"); }
  set_enabled(true);
  { Span s("on"); }
  set_enabled(false);
  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "on");
  swap_registry(prev);
}

TEST(ObsGlobal, SwapRegistryRedirectsAndRestores) {
  Registry mine;
  Registry* prev = swap_registry(&mine);
  registry().counter("probe").add();
  EXPECT_EQ(mine.counters().at("probe"), 1);
  swap_registry(prev);
  EXPECT_NE(&registry(), &mine);
}

TEST_F(ObsExport, CsvRoundTrip) {
  reg_.counter("milp.nodes").add(17);
  reg_.gauge("mapping.wavelengths_used").set(9);
  reg_.histogram("lp.iterations").observe(12.0);
  reg_.append_series("milp.incumbent", -3.25);
  { Span s("synth"); }

  const std::string csv = metrics_csv(reg_);
  const std::map<std::string, double> parsed = metrics_from_csv(csv);
  const std::map<std::string, double> flat = reg_.flatten();
  ASSERT_EQ(parsed.size(), flat.size());
  for (const auto& [name, value] : flat) {
    ASSERT_TRUE(parsed.count(name)) << name;
    EXPECT_DOUBLE_EQ(parsed.at(name), value) << name;
  }
}

TEST_F(ObsExport, CsvParserRejectsGarbage) {
  EXPECT_THROW(metrics_from_csv("no comma here\n"), std::invalid_argument);
}

TEST_F(ObsExport, MetricsJsonContainsEveryFlattenedEntry) {
  reg_.counter("milp.lazy_cuts").add(3);
  reg_.gauge("ring.crossings").set(0);
  const std::string json = metrics_json(reg_);
  EXPECT_NE(json.find("\"milp.lazy_cuts\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ring.crossings\": 0"), std::string::npos) << json;
}

TEST_F(ObsExport, TraceJsonHasOneCompleteEventPerSpan) {
  {
    Span outer("outer");
    Span inner("inner");
  }
  reg_.append_series("milp.incumbent", 5.0);
  const std::string json = trace_json(reg_);

  auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"X\""), 2u);  // one complete event per span
  EXPECT_EQ(count("\"ph\":\"C\""), 1u);  // one counter event per series point
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Structurally sound: balanced braces/brackets (no strings in our output
  // contain either).
  EXPECT_EQ(count("{"), count("}"));
  EXPECT_EQ(count("["), count("]"));
}

TEST_F(ObsExport, WriteFailuresThrowInsteadOfTruncating) {
  // Opening an unwritable path fails up front ...
  EXPECT_THROW(write_metrics_json("/nonexistent-dir/metrics.json", reg_),
               std::runtime_error);
  // ... and a write that fails only once data flows (ENOSPC — /dev/full
  // accepts the open and rejects the flush, like a full disk) must also
  // surface, not silently truncate the artifact.
  if (std::ifstream("/dev/full").good()) {
    reg_.counter("some.metric").add(1);
    EXPECT_THROW(write_metrics_json("/dev/full", reg_), std::runtime_error);
  }
}

TEST_F(ObsExport, JsonEscapesSpecialCharacters) {
  reg_.gauge("weird\"name\\with\nescapes").set(1.0);
  const std::string json = metrics_json(reg_);
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nescapes"), std::string::npos)
      << json;
}

// --- Registry capture: spans straddling swap_registry() ------------------

TEST(ObsGlobal, SpanStraddlingSwapRecordsIntoOriginRegistry) {
  Registry first, second;
  Registry* prev = swap_registry(&first);
  set_enabled(true);
  {
    Span s("straddler");
    // The registry is swapped while the span is open; the span must still
    // record into the registry it started in.
    swap_registry(&second);
  }
  set_enabled(false);
  swap_registry(prev);
  ASSERT_EQ(first.spans().size(), 1u);
  EXPECT_EQ(first.spans()[0].name, "straddler");
  EXPECT_TRUE(second.spans().empty());
}

// --- Exporter round trips through the JSON parser ------------------------

TEST(ObsJsonParser, ParsesScalarsContainersAndRejectsGarbage) {
  const JsonValue v =
      parse_json("{\"a\": [1, -2.5e1, true, null], \"b\": {\"c\": \"x\"}}");
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 4u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].number, -25.0);
  EXPECT_TRUE(a->array[2].boolean);
  EXPECT_EQ(a->array[3].kind, JsonValue::Kind::kNull);
  ASSERT_NE(v.find("b"), nullptr);
  ASSERT_NE(v.find("b")->find("c"), nullptr);
  EXPECT_EQ(v.find("b")->find("c")->string, "x");
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(parse_json("{\"unterminated\": "), std::invalid_argument);
  EXPECT_THROW(parse_json("[1, 2] trailing"), std::invalid_argument);
  EXPECT_THROW(parse_json("nope"), std::invalid_argument);
}

/// One "X" (complete-span) event parsed back from a Chrome trace.
struct ParsedSpan {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  double tid = 0.0;
};

std::vector<ParsedSpan> parsed_trace_spans(const std::string& json) {
  const JsonValue root = parse_json(json);
  EXPECT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue* events = root.find("traceEvents");
  EXPECT_NE(events, nullptr);
  std::vector<ParsedSpan> out;
  for (const JsonValue& ev : events->array) {
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || ph->string != "X") continue;
    ParsedSpan s;
    s.name = ev.find("name")->string;
    s.ts = ev.find("ts")->number;
    s.dur = ev.find("dur")->number;
    s.tid = ev.find("tid")->number;
    out.push_back(std::move(s));
  }
  return out;
}

TEST_F(ObsExport, TraceJsonParsesBackAndContainmentReconstructsHierarchy) {
  {
    Span outer("outer");
    {
      Span middle("middle");
      Span inner("inner");
    }
    Span sibling("sibling");
  }
  std::vector<ParsedSpan> spans = parsed_trace_spans(trace_json(reg_));
  ASSERT_EQ(spans.size(), 4u);
  auto by_name = [&](const char* name) -> const ParsedSpan& {
    for (const ParsedSpan& s : spans) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << "missing span " << name;
    return spans.front();
  };
  const ParsedSpan& outer = by_name("outer");
  auto contains = [](const ParsedSpan& parent, const ParsedSpan& child) {
    return child.ts >= parent.ts - 1.0 &&
           child.ts + child.dur <= parent.ts + parent.dur + 1.0;
  };
  // ts/dur containment alone recovers the span tree: every other span nests
  // inside `outer`, `inner` inside `middle`, and the siblings are disjoint.
  EXPECT_TRUE(contains(outer, by_name("middle")));
  EXPECT_TRUE(contains(outer, by_name("inner")));
  EXPECT_TRUE(contains(outer, by_name("sibling")));
  EXPECT_TRUE(contains(by_name("middle"), by_name("inner")));
  const ParsedSpan& middle = by_name("middle");
  const ParsedSpan& sibling = by_name("sibling");
  EXPECT_GE(sibling.ts, middle.ts + middle.dur - 1.0);
}

TEST_F(ObsExport, TraceJsonRoundTripsUnderEightThreads) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      Span outer("t.outer");
      Span inner("t.inner");
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<ParsedSpan> spans = parsed_trace_spans(trace_json(reg_));
  ASSERT_EQ(spans.size(), 2u * kThreads);
  // Per thread id: exactly one outer and one inner, inner contained.
  std::map<double, std::vector<ParsedSpan>> by_tid;
  for (ParsedSpan& s : spans) by_tid[s.tid].push_back(s);
  ASSERT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));
  for (auto& [tid, ts] : by_tid) {
    ASSERT_EQ(ts.size(), 2u) << "tid " << tid;
    const ParsedSpan& outer = ts[0].name == "t.outer" ? ts[0] : ts[1];
    const ParsedSpan& inner = ts[0].name == "t.inner" ? ts[0] : ts[1];
    EXPECT_EQ(outer.name, "t.outer");
    EXPECT_EQ(inner.name, "t.inner");
    EXPECT_GE(inner.ts, outer.ts - 1.0);
    EXPECT_LE(inner.ts + inner.dur, outer.ts + outer.dur + 1.0);
  }
}

TEST_F(ObsExport, RunReportJsonParsesBackWithSpansAndMetrics) {
  reg_.counter("milp.nodes").add(5);
  {
    Span outer("synth");
    Span inner("mapping");
  }
  const JsonValue root = parse_json(report::run_report_json(reg_));
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue* metrics = root.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->find("milp.nodes"), nullptr);
  EXPECT_EQ(metrics->find("milp.nodes")->number, 5.0);
  const JsonValue* spans = root.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array.size(), 2u);
  // Spans close innermost-first; containment must hold after parsing.
  const JsonValue& inner = spans->array[0];
  const JsonValue& outer = spans->array[1];
  EXPECT_EQ(inner.find("name")->string, "mapping");
  EXPECT_EQ(outer.find("name")->string, "synth");
  EXPECT_GE(inner.find("start_us")->number,
            outer.find("start_us")->number - 1.0);
  // The memory section exists (empty without profiling — still an array).
  const JsonValue* memory = root.find("memory");
  ASSERT_NE(memory, nullptr);
  EXPECT_EQ(memory->kind, JsonValue::Kind::kArray);
}

}  // namespace
}  // namespace xring::obs
