#include <gtest/gtest.h>

#include <sstream>

#include "phys/parameters_io.hpp"

namespace xring::phys {
namespace {

TEST(ParametersIo, RoundTrip) {
  Parameters p = Parameters::oring();
  p.loss.crossing_db = 0.123;
  p.crosstalk.crossing_db = -37.5;
  p.crosstalk.residue_filter = false;
  p.geometry.splitter_um = 33.0;

  std::stringstream buf;
  write_parameters(p, buf);
  const Parameters q = read_parameters(buf, Parameters::proton_plus());
  EXPECT_DOUBLE_EQ(q.loss.crossing_db, 0.123);
  EXPECT_DOUBLE_EQ(q.crosstalk.crossing_db, -37.5);
  EXPECT_FALSE(q.crosstalk.residue_filter);
  EXPECT_DOUBLE_EQ(q.geometry.splitter_um, 33.0);
  EXPECT_DOUBLE_EQ(q.loss.drop_db, p.loss.drop_db);
}

TEST(ParametersIo, PartialFileKeepsBase) {
  std::istringstream in(
      "# only one change\n"
      "loss.drop_db = 1.25\n");
  const Parameters p = read_parameters(in, Parameters::oring());
  EXPECT_DOUBLE_EQ(p.loss.drop_db, 1.25);
  EXPECT_DOUBLE_EQ(p.loss.through_db, Parameters::oring().loss.through_db);
}

TEST(ParametersIo, CommentsAndWhitespaceTolerated) {
  std::istringstream in(
      "\n"
      "   # header comment\n"
      "  loss.bend_db   =   0.009   # trailing\n"
      "\n");
  const Parameters p = read_parameters(in);
  EXPECT_DOUBLE_EQ(p.loss.bend_db, 0.009);
}

TEST(ParametersIo, UnknownKeyRejected) {
  std::istringstream in("loss.tyop_db = 1\n");
  EXPECT_THROW(read_parameters(in), std::invalid_argument);
}

TEST(ParametersIo, MalformedLinesRejected) {
  {
    std::istringstream in("loss.drop_db 0.5\n");
    EXPECT_THROW(read_parameters(in), std::invalid_argument);
  }
  {
    std::istringstream in("loss.drop_db = banana\n");
    EXPECT_THROW(read_parameters(in), std::invalid_argument);
  }
}

TEST(ParametersIo, BooleanFilterParses) {
  for (const char* v : {"true", "1"}) {
    std::istringstream in(std::string("crosstalk.residue_filter = ") + v);
    EXPECT_TRUE(read_parameters(in).crosstalk.residue_filter);
  }
  std::istringstream in("crosstalk.residue_filter = false");
  EXPECT_FALSE(read_parameters(in).crosstalk.residue_filter);
}

TEST(ParametersIo, MissingFileThrows) {
  EXPECT_THROW(load_parameters("/does/not/exist.params"), std::runtime_error);
}

}  // namespace
}  // namespace xring::phys
