// Tests of the run-explainability layer: the per-signal loss ledger and
// crosstalk attribution table retained by analysis::evaluate (their sums
// must reproduce the headline totals), the structured diagnostics emitted
// by the pipeline stages, and the HTML/JSON run report built from them.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "baseline/oring.hpp"
#include "milp/branch_and_bound.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "report/run_report.hpp"
#include "verify/drc.hpp"
#include "xring/synthesizer.hpp"

namespace xring {
namespace {

/// Installs a fresh registry and enables tracing for one test, restoring
/// both on destruction (same pattern as test_obs.cpp).
class ObsExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_ = obs::swap_registry(&reg_);
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::swap_registry(prev_);
  }

  bool has_diagnostic(const std::string& code) const {
    for (const obs::Diagnostic& d : reg_.diagnostics()) {
      if (d.code == code) return true;
    }
    return false;
  }

  // The returned design holds a pointer to the floorplan, so it must live
  // in the fixture, not in a helper's stack frame.
  SynthesisResult synthesize(int nodes) {
    fp_ = netlist::Floorplan::standard(nodes);
    Synthesizer synth(fp_);
    SynthesisOptions opt;
    opt.mapping.max_wavelengths = nodes;
    return synth.run(opt);
  }

  /// An ORing baseline with its crossing comb PDN: the design the paper
  /// shows suffering first-order noise, so the attribution ledger is
  /// non-trivial.
  SynthesisResult synthesize_noisy(int nodes) {
    fp_ = netlist::Floorplan::standard(nodes);
    Synthesizer synth(fp_);
    const auto ring = ring::build_ring(fp_, synth.oracle(), {});
    baseline::OringOptions opt;
    opt.max_wavelengths = nodes;
    return baseline::synthesize_oring(fp_, ring, opt);
  }

  netlist::Floorplan fp_;
  obs::Registry reg_;
  obs::Registry* prev_ = nullptr;
};

// --- Provenance ledgers --------------------------------------------------

TEST_F(ObsExplainTest, LossLedgerTermsSumToReportedLosses) {
  const SynthesisResult r = synthesize(8);
  const analysis::RouterMetrics& m = r.metrics;
  ASSERT_EQ(m.loss_ledger.size(), m.signals.size());
  ASSERT_FALSE(m.signals.empty());
  for (std::size_t i = 0; i < m.signals.size(); ++i) {
    const analysis::LossBreakdown& b = m.loss_ledger[i];
    // The itemized dB components must reproduce both headline losses.
    const double star = b.propagation_db + b.modulator_db + b.drop_db +
                        b.through_db + b.crossing_db + b.bend_db +
                        b.photodetector_db;
    EXPECT_NEAR(star, b.star_db(), 1e-12) << "signal " << i;
    EXPECT_NEAR(b.star_db(), m.signals[i].il_star_db, 1e-9) << "signal " << i;
    EXPECT_NEAR(b.total_db(), m.signals[i].il_db, 1e-9) << "signal " << i;
    EXPECT_GE(b.pdn_db + b.coupler_db, 0.0) << "signal " << i;
  }
}

TEST_F(ObsExplainTest, XtalkAttributionRowsSumToVictimNoise) {
  const SynthesisResult r = synthesize_noisy(8);
  const analysis::RouterMetrics& m = r.metrics;
  ASSERT_GT(m.noisy_signals, 0) << "ORing with a comb PDN must see noise";
  ASSERT_FALSE(m.xtalk_ledger.empty());

  std::vector<double> summed(m.signals.size(), 0.0);
  for (const analysis::XtalkContribution& x : m.xtalk_ledger) {
    ASSERT_GE(x.victim, 0);
    ASSERT_LT(x.victim, static_cast<int>(m.signals.size()));
    EXPECT_GT(x.noise_mw, 0.0);
    summed[x.victim] += x.noise_mw;
  }
  for (std::size_t v = 0; v < m.signals.size(); ++v) {
    // Replaying the deposits in ledger order reproduces the accumulation
    // evaluate() performed, so the match is essentially exact.
    EXPECT_NEAR(summed[v], m.signals[v].noise_mw,
                1e-9 * std::max(1.0, m.signals[v].noise_mw))
        << "victim " << v;
  }
}

TEST_F(ObsExplainTest, XtalkLedgerEmptyForCleanDesign) {
  const SynthesisResult r = synthesize(8);
  // XRing's headline claim: no first-order crosstalk — so nothing to
  // attribute, and every signal's noise is zero.
  EXPECT_EQ(r.metrics.noisy_signals, 0);
  for (const analysis::XtalkContribution& x : r.metrics.xtalk_ledger) {
    EXPECT_LT(x.noise_mw, r.design.params.crosstalk.noise_floor_mw);
  }
}

TEST_F(ObsExplainTest, XtalkSourceNamesAreStable) {
  EXPECT_STREQ(analysis::to_string(analysis::XtalkSource::kPdnLeak),
               "pdn-leak");
  EXPECT_STREQ(analysis::to_string(analysis::XtalkSource::kReceiverResidue),
               "receiver-residue");
}

// --- Diagnostics ---------------------------------------------------------

TEST_F(ObsExplainTest, SnrBelowThresholdEmitsDiagnostic) {
  SynthesisResult r = synthesize_noisy(8);
  EXPECT_FALSE(has_diagnostic("analysis.snr_below_threshold"))
      << "default threshold should not flag the baseline";
  // Re-evaluate with an absurdly high threshold: every noisy signal's SNR
  // now falls below it and must be flagged.
  r.design.params.crosstalk.snr_warn_db = 1e6;
  const analysis::RouterMetrics m = analysis::evaluate(r.design);
  ASSERT_GT(m.noisy_signals, 0);
  EXPECT_TRUE(has_diagnostic("analysis.snr_below_threshold"));
  for (const obs::Diagnostic& d : reg_.diagnostics()) {
    if (d.code != "analysis.snr_below_threshold") continue;
    EXPECT_EQ(d.severity, obs::Severity::kWarning);
    bool has_signal_key = false;
    for (const auto& [k, v] : d.context) has_signal_key |= (k == "signal");
    EXPECT_TRUE(has_signal_key);
  }
}

TEST_F(ObsExplainTest, WavelengthConflictEmitsDiagnostic) {
  const auto fp = netlist::Floorplan::standard(8);
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.mapping.max_wavelengths = 1;  // all2all cannot fit in one λ
  synth.run(opt);
  EXPECT_TRUE(has_diagnostic("mapping.wavelength_conflict"));
}

TEST_F(ObsExplainTest, MilpInfeasibleEmitsDiagnostic) {
  milp::Model model;
  const int x = model.add_variable(milp::VarType::kBinary, 0.0, 1.0, 1.0);
  model.add_constraint({{x, 1.0}}, milp::Sense::kGe, 1.0);
  model.add_constraint({{x, 1.0}}, milp::Sense::kLe, 0.0);
  const milp::MipResult res = milp::solve(model);
  EXPECT_EQ(res.status, milp::MipStatus::kInfeasible);
  EXPECT_TRUE(has_diagnostic("milp.infeasible"));
}

TEST_F(ObsExplainTest, DrcViolationEmitsDiagnosticPerRule) {
  const SynthesisResult r = synthesize(8);
  ASSERT_TRUE(verify::check(r.design).empty());
  EXPECT_FALSE(has_diagnostic("drc.wavelength-cap"));
  // Check the same (legal) design against a cap of one wavelength: every
  // ring route above λ0 now violates the rule.
  verify::DrcOptions drc;
  drc.max_wavelengths = 1;
  const auto violations = verify::check(r.design, drc);
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(has_diagnostic("drc.wavelength-cap"));
}

TEST_F(ObsExplainTest, DiagnosticsJsonListsEveryRecord) {
  obs::diagnose(obs::Severity::kError, "test.code", "broke \"badly\"",
                {{"key", "value"}});
  obs::diagnose(obs::Severity::kInfo, "test.other", "fine");
  const std::string json = obs::diagnostics_json(reg_);
  EXPECT_NE(json.find("\"code\":\"test.code\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("broke \\\"badly\\\""), std::string::npos);
  EXPECT_NE(json.find("\"key\":\"value\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"test.other\""), std::string::npos);
}

// --- Run report ----------------------------------------------------------

TEST_F(ObsExplainTest, RunReportHtmlContainsEverySection) {
  const SynthesisResult r = synthesize_noisy(8);
  const std::string html =
      report::run_report_html(reg_, &r.design, &r.metrics);
  for (const char* section : {"id=\"diagnostics\"", "id=\"timeline\"",
                              "id=\"convergence\"", "id=\"waterfall\"",
                              "id=\"xtalk\"", "id=\"metrics\""}) {
    EXPECT_NE(html.find(section), std::string::npos) << section;
  }
  // Self-contained: no external scripts or stylesheets.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
  // The noisy baseline has attribution rows to draw.
  EXPECT_NE(html.find("pdn-leak"), std::string::npos);
}

TEST_F(ObsExplainTest, RunReportJsonCarriesLedgersAndMetrics) {
  const SynthesisResult r = synthesize(8);
  const std::string json =
      report::run_report_json(reg_, &r.design, &r.metrics);
  for (const char* key : {"\"title\"", "\"metrics\"", "\"spans\"",
                          "\"series\"", "\"diagnostics\"", "\"signals\"",
                          "\"xtalk\"", "\"loss\"", "\"propagation_db\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST_F(ObsExplainTest, RunReportDegradesWithoutDesign) {
  { obs::Span s("synth"); }
  const std::string html = report::run_report_html(reg_);
  EXPECT_NE(html.find("id=\"timeline\""), std::string::npos);
  EXPECT_EQ(html.find("id=\"waterfall\""), std::string::npos);
  EXPECT_EQ(html.find("id=\"xtalk\""), std::string::npos);
}

// --- metrics_from_json (the bench_compare reader) ------------------------

TEST_F(ObsExplainTest, MetricsJsonRoundTripsThroughParser) {
  reg_.counter("milp.nodes").add(17);
  reg_.gauge("table1.n8.XRing.il_w").set(2.25);
  reg_.histogram("lp.iterations").observe(12.0);
  const std::map<std::string, double> parsed =
      obs::metrics_from_json(obs::metrics_json(reg_));
  const std::map<std::string, double> flat = reg_.flatten();
  ASSERT_EQ(parsed.size(), flat.size());
  for (const auto& [name, value] : flat) {
    ASSERT_TRUE(parsed.count(name)) << name;
    EXPECT_DOUBLE_EQ(parsed.at(name), value) << name;
  }
}

TEST_F(ObsExplainTest, MetricsJsonParserRejectsMalformedInput) {
  EXPECT_THROW(obs::metrics_from_json("not json"), std::invalid_argument);
  EXPECT_THROW(obs::metrics_from_json("{\"a\": }"), std::invalid_argument);
  EXPECT_THROW(obs::metrics_from_json("{\"a\": 1} trailing"),
               std::invalid_argument);
  EXPECT_THROW(obs::metrics_from_json("{\"a\": [1]}"), std::invalid_argument);
  const auto parsed = obs::metrics_from_json("{\"a\": null, \"b\": -2e3}");
  EXPECT_TRUE(std::isnan(parsed.at("a")));
  EXPECT_EQ(parsed.at("b"), -2000.0);
}

}  // namespace
}  // namespace xring
