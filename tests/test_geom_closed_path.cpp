#include <gtest/gtest.h>

#include "geom/closed_path.hpp"
#include "geom/offset.hpp"
#include "ring/builder.hpp"

namespace xring::geom {
namespace {

Polyline rectangle(Coord w, Coord h) {
  Polyline p;
  p.append(Segment{{0, 0}, {w, 0}});
  p.append(Segment{{w, 0}, {w, h}});
  p.append(Segment{{w, h}, {0, h}});
  p.append(Segment{{0, h}, {0, 0}});
  return p;
}

TEST(ClosedPath, LengthAndCorners) {
  const ClosedPath path(rectangle(10, 6));
  EXPECT_EQ(path.length(), 32);
  EXPECT_EQ(path.at(0), (Point{0, 0}));
  EXPECT_EQ(path.at(10), (Point{10, 0}));
  EXPECT_EQ(path.at(16), (Point{10, 6}));
  EXPECT_EQ(path.at(26), (Point{0, 6}));
}

TEST(ClosedPath, InteriorPointsAndWrap) {
  const ClosedPath path(rectangle(10, 6));
  EXPECT_EQ(path.at(5), (Point{5, 0}));
  EXPECT_EQ(path.at(13), (Point{10, 3}));
  EXPECT_EQ(path.at(32), (Point{0, 0}));   // full lap
  EXPECT_EQ(path.at(37), (Point{5, 0}));   // wrap
  EXPECT_EQ(path.at(-6), (Point{0, 6}));   // negative wraps backward
}

TEST(ClosedPath, ForwardDistance) {
  const ClosedPath path(rectangle(10, 6));
  EXPECT_EQ(path.forward_distance(5, 13), 8);
  EXPECT_EQ(path.forward_distance(13, 5), 24);  // the long way around
  EXPECT_EQ(path.forward_distance(7, 7), 0);
}

TEST(ClosedPath, SubpathWithinOneSegment) {
  const ClosedPath path(rectangle(10, 6));
  const Polyline sub = path.subpath(2, 7);
  EXPECT_EQ(sub.length(), 5);
  ASSERT_EQ(sub.segments().size(), 1u);
  EXPECT_EQ(sub.segments()[0], (Segment{{2, 0}, {7, 0}}));
}

TEST(ClosedPath, SubpathAcrossCorners) {
  const ClosedPath path(rectangle(10, 6));
  const Polyline sub = path.subpath(5, 19);
  EXPECT_EQ(sub.length(), 14);
  EXPECT_EQ(sub.segments().size(), 3u);  // rest of bottom, right, into top
}

TEST(ClosedPath, SubpathWrappingAroundStart) {
  const ClosedPath path(rectangle(10, 6));
  const Polyline sub = path.subpath(30, 4);
  EXPECT_EQ(sub.length(), 6);
  EXPECT_EQ(sub.segments().front().a, (Point{0, 2}));
  EXPECT_EQ(sub.segments().back().b, (Point{4, 0}));
}

TEST(ClosedPath, RejectsOpenChains) {
  Polyline open;
  open.append(Segment{{0, 0}, {4, 0}});
  open.append(Segment{{4, 0}, {4, 4}});
  open.append(Segment{{4, 4}, {0, 4}});
  EXPECT_THROW(ClosedPath{open}, std::invalid_argument);
}

TEST(ClosedPath, WorksOnSynthesizedRings) {
  const auto fp = netlist::Floorplan::standard(16);
  const auto ring = ring::build_ring(fp).geometry;
  const ClosedPath path(ring.polyline);
  EXPECT_EQ(path.length(), ring.polyline.length());
  // Node arc coordinates land exactly on node positions.
  geom::Coord arc = 0;
  for (int p = 0; p < ring.tour.size(); ++p) {
    EXPECT_EQ(path.at(arc), fp.position(ring.tour.at(p))) << "position " << p;
    arc += ring.tour.hop_length(p);
  }
}

TEST(ClosedPath, ChannelSubpathsStayOffTheRing) {
  // PDN realization property: sub-paths of an offset copy never cross the
  // base ring.
  const auto fp = netlist::Floorplan::standard(8);
  const auto ring = ring::build_ring(fp).geometry;
  const Polyline channel_line = offset_closed(ring.polyline, 200, false);
  const ClosedPath channel(channel_line);
  for (Coord from = 0; from < channel.length(); from += 3000) {
    const Polyline sub = channel.subpath(from, from + 2500);
    EXPECT_EQ(sub.crossings_with(ring.polyline), 0);
  }
}

}  // namespace
}  // namespace xring::geom
