// The cross-run layer: metric gate classification shared with
// bench_compare, run.json round trips, the store's record/list/load
// lifecycle, span-tree aggregation, A/B diffs under the gate, and
// aggregation across runs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "obs/context.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/runstore.hpp"

namespace xring::obs {
namespace {

namespace fs = std::filesystem;

/// A unique empty store root per test, removed on teardown.
class RunStoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = (fs::temp_directory_path() /
             (std::string("xring_runstore_") + info->name()))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
};

TEST(RunstoreClassify, MatchesTheBenchCompareRules) {
  // Precedence: ignored beats everything (bench repeat counts, raw
  // timestamps), then solver-internal, resource, time-like, quality.
  EXPECT_EQ(classify_metric("bench.iterations"), MetricClass::kIgnored);
  EXPECT_EQ(classify_metric("events.first.t_us"), MetricClass::kIgnored);
  EXPECT_EQ(classify_metric("lp.pivots"), MetricClass::kSolverInternal);
  EXPECT_EQ(classify_metric("lp.iterations.count"),
            MetricClass::kSolverInternal);
  EXPECT_EQ(classify_metric("lp.ftran_density.mean"),
            MetricClass::kSolverInternal);
  EXPECT_EQ(classify_metric("lp.refactorizations"),
            MetricClass::kSolverInternal);
  EXPECT_EQ(classify_metric("lp.eta_nnz"), MetricClass::kSolverInternal);
  EXPECT_EQ(classify_metric("milp.warm_pivots"), MetricClass::kSolverInternal);
  EXPECT_EQ(classify_metric("milp.cold_solves"), MetricClass::kSolverInternal);
  EXPECT_EQ(classify_metric("mem.rss_bytes.last"), MetricClass::kResource);
  EXPECT_EQ(classify_metric("events.count"), MetricClass::kResource);
  EXPECT_EQ(classify_metric("par.steals"), MetricClass::kResource);
  EXPECT_EQ(classify_metric("milp.spec_launched"), MetricClass::kResource);
  EXPECT_EQ(classify_metric("span.synth.total_s"), MetricClass::kTimeLike);
  EXPECT_EQ(classify_metric("solve.real_time_ns"), MetricClass::kTimeLike);
  EXPECT_EQ(classify_metric("synthesis.seconds"), MetricClass::kTimeLike);
  EXPECT_EQ(classify_metric("table1.xring.16.T"), MetricClass::kTimeLike);
  EXPECT_EQ(classify_metric("milp.nodes"), MetricClass::kQuality);
  EXPECT_EQ(classify_metric("ring.length_mm"), MetricClass::kQuality);
  EXPECT_EQ(classify_metric("table1.xring.16.IL"), MetricClass::kQuality);
}

TEST(RunstoreClassify, GateFormulasMatchBenchCompare) {
  const GateOptions gate;  // 3.0x time, 1e-6 relative
  // Quality: tight both directions, with the absolute 1e-9 slack.
  EXPECT_FALSE(metric_regressed("ring.length_mm", 100.0, 100.0, gate));
  EXPECT_FALSE(metric_regressed("ring.length_mm", 100.0, 100.00001, gate));
  EXPECT_TRUE(metric_regressed("ring.length_mm", 100.0, 100.1, gate));
  EXPECT_TRUE(metric_regressed("ring.length_mm", 100.0, 99.9, gate));
  // Time-like: only growth fails, and sub-floor baselines use the floor.
  EXPECT_EQ(time_noise_floor("solve.real_time_ns"), 1e6);
  EXPECT_EQ(time_noise_floor("span.synth.total_s"), 0.1);
  EXPECT_FALSE(metric_regressed("span.synth.total_s", 1.0, 2.9, gate));
  EXPECT_TRUE(metric_regressed("span.synth.total_s", 1.0, 3.1, gate));
  EXPECT_FALSE(metric_regressed("span.synth.total_s", 10.0, 1.0, gate));
  EXPECT_FALSE(metric_regressed("span.tiny.total_s", 0.001, 0.2, gate));
  EXPECT_TRUE(metric_regressed("span.tiny.total_s", 0.001, 0.5, gate));
  // null (NaN) compares equal only to null.
  const double nan = std::nan("");
  EXPECT_FALSE(metric_regressed("ring.snr_db", nan, nan, gate));
  EXPECT_TRUE(metric_regressed("ring.snr_db", nan, 1.0, gate));
  EXPECT_TRUE(metric_regressed("ring.snr_db", 1.0, nan, gate));
  // Never-gated classes.
  EXPECT_FALSE(metric_regressed("lp.pivots", 10.0, 1e9, gate));
  EXPECT_FALSE(metric_regressed("mem.rss_bytes.last", 1.0, 1e12, gate));
  EXPECT_FALSE(metric_regressed("bench.iterations", 1.0, 50.0, gate));
}

TEST(Runstore, RunRecordJsonRoundTrips) {
  RunRecord rec;
  rec.id = "run_a";
  rec.title = "synth \"8\" nodes";  // exercises escaping
  rec.unix_time = 1754700000.5;
  rec.environment = {{"jobs", "4"}, {"config_hash", "00ff"}};
  rec.metrics = {{"ring.length_mm", 123.25},
                 {"milp.nodes", 42.0},
                 {"ring.snr_db", std::nan("")}};
  rec.span_tree = {{"synth", 1, 1.5}, {"synth;mapping", 1, 0.5}};
  rec.artifacts = {{"trace", "trace.json"}};

  const RunRecord back = parse_run_record(run_record_json(rec));
  EXPECT_EQ(back.schema, "xring.run/1");
  EXPECT_EQ(back.id, rec.id);
  EXPECT_EQ(back.title, rec.title);
  EXPECT_DOUBLE_EQ(back.unix_time, rec.unix_time);
  EXPECT_EQ(back.environment, rec.environment);
  EXPECT_EQ(back.artifacts, rec.artifacts);
  ASSERT_EQ(back.metrics.size(), 3u);
  EXPECT_DOUBLE_EQ(back.metrics.at("ring.length_mm"), 123.25);
  EXPECT_TRUE(std::isnan(back.metrics.at("ring.snr_db")));  // null round trip
  ASSERT_EQ(back.span_tree.size(), 2u);
  EXPECT_EQ(back.span_tree[1].path, "synth;mapping");
  EXPECT_DOUBLE_EQ(back.span_tree[1].total_s, 0.5);

  EXPECT_THROW(parse_run_record("{\"schema\": \"other/1\"}"),
               std::invalid_argument);
  EXPECT_THROW(parse_run_record("[]"), std::invalid_argument);
}

TEST(Runstore, SpanTreeParentsByDepthAndContainment) {
  Registry reg;
  Registry* prev = swap_registry(&reg);
  set_enabled(true);
  {
    Span synth("synth");
    {
      Span mapping("mapping");
      { Span solve("solve"); }
      { Span solve("solve"); }
    }
    { Span pdn("pdn"); }
  }
  set_enabled(false);
  swap_registry(prev);

  const auto tree = span_tree(reg);
  std::map<std::string, long long> counts;
  for (const auto& node : tree) counts[node.path] = node.count;
  EXPECT_EQ(counts.at("synth"), 1);
  EXPECT_EQ(counts.at("synth;mapping"), 1);
  EXPECT_EQ(counts.at("synth;mapping;solve"), 2);
  EXPECT_EQ(counts.at("synth;pdn"), 1);
  EXPECT_EQ(counts.size(), 4u);
}

TEST(Runstore, ConfigHashIsStableAndDiscriminates) {
  const std::string h = config_hash("nodes=8;wl=8");
  EXPECT_EQ(h.size(), 16u);
  EXPECT_EQ(h, config_hash("nodes=8;wl=8"));
  EXPECT_NE(h, config_hash("nodes=8;wl=16"));
}

TEST_F(RunStoreFixture, RecordListLoadLifecycle) {
  Registry reg;
  reg.counter("ring.crossings").add(0);
  reg.gauge("ring.length_mm").set(123.25);

  RunStore store(root_);
  RunRecordOptions opts;
  opts.title = "first";
  opts.artifacts = {{"metrics", "metrics.json"}};
  const std::string id_a = store.record(reg, opts);
  opts.title = "second";
  opts.id = "named_run";
  const std::string id_b = store.record(reg, opts);
  EXPECT_EQ(id_b, "named_run");
  EXPECT_NE(id_a, id_b);

  const auto entries = store.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, id_a);
  EXPECT_EQ(entries[0].title, "first");
  EXPECT_EQ(entries[1].id, "named_run");

  // Load by id, by run-directory path, and by run.json path.
  for (const std::string& ref :
       {id_a, (fs::path(root_) / id_a).string(),
        (fs::path(root_) / id_a / "run.json").string()}) {
    const RunRecord rec = store.load(ref);
    EXPECT_EQ(rec.id, id_a) << ref;
    EXPECT_DOUBLE_EQ(rec.metrics.at("ring.length_mm"), 123.25) << ref;
    EXPECT_DOUBLE_EQ(rec.metrics.at("ring.crossings"), 0.0) << ref;
  }
  EXPECT_THROW(store.load("no_such_run"), std::exception);

  // Generated ids are unique even within one second.
  std::set<std::string> ids;
  RunRecordOptions fresh;
  for (int i = 0; i < 5; ++i) ids.insert(store.record(reg, fresh));
  EXPECT_EQ(ids.size(), 5u);
}

RunRecord make_record(const std::string& id,
                      std::map<std::string, double> metrics) {
  RunRecord rec;
  rec.id = id;
  rec.metrics = std::move(metrics);
  return rec;
}

TEST(Runstore, DiffAppliesTheGatePerClass) {
  const RunRecord a = make_record("a", {{"ring.length_mm", 100.0},
                                        {"milp.nodes", 40.0},
                                        {"lp.pivots", 500.0},
                                        {"mem.rss_bytes.last", 1e6},
                                        {"span.synth.total_s", 1.0},
                                        {"only.in.a", 1.0}});
  const RunRecord b = make_record("b", {{"ring.length_mm", 101.0},
                                        {"milp.nodes", 40.0},
                                        {"lp.pivots", 900.0},
                                        {"mem.rss_bytes.last", 5e6},
                                        {"span.synth.total_s", 4.0},
                                        {"only.in.b", 1.0}});
  const RunDiff d = diff_runs(a, b);
  EXPECT_EQ(d.compared, 3);  // ring.length_mm, milp.nodes, span time
  EXPECT_EQ(d.skipped, 2);   // lp.pivots, mem.rss
  EXPECT_EQ(d.one_sided, 2);
  EXPECT_EQ(d.regressions, 2);  // length changed, span grew 4x
  for (const MetricDelta& md : d.deltas) {
    if (md.name == "ring.length_mm" || md.name == "span.synth.total_s") {
      EXPECT_TRUE(md.regressed) << md.name;
    } else {
      EXPECT_FALSE(md.regressed) << md.name;
    }
  }

  // A run diffed against itself is clean.
  const RunDiff same = diff_runs(a, a);
  EXPECT_EQ(same.regressions, 0);
  EXPECT_EQ(same.one_sided, 0);

  // Prefix restriction narrows both the gate and the one-sided accounting.
  const RunDiff scoped = diff_runs(a, b, GateOptions{}, "ring.");
  EXPECT_EQ(scoped.compared, 1);
  EXPECT_EQ(scoped.one_sided, 0);
  EXPECT_EQ(scoped.regressions, 1);

  // A wider quality tolerance clears the 1% length drift.
  GateOptions loose;
  loose.rel_tolerance = 0.05;
  EXPECT_EQ(diff_runs(a, b, loose).regressions, 1);  // span still fails
}

TEST(Runstore, DiffReportsSerializeBothWays) {
  RunRecord a = make_record("a", {{"ring.length_mm", 100.0},
                                  {"mem.rss_bytes.last", 1e6}});
  RunRecord b = make_record("b", {{"ring.length_mm", 101.0},
                                  {"mem.rss_bytes.last", 2e6}});
  a.title = "baseline";
  b.title = "candidate";
  a.environment = {{"jobs", "4"}};
  b.environment = {{"jobs", "8"}};
  a.span_tree = {{"synth", 1, 1.0}, {"synth;mapping", 1, 0.25}};
  b.span_tree = {{"synth", 1, 2.0}, {"synth;opening", 1, 0.5}};
  const RunDiff d = diff_runs(a, b);

  const JsonValue doc = parse_json(run_diff_json(d));
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(doc.find("a")->find("id")->string, "a");
  EXPECT_EQ(doc.find("summary")->find("regressions")->number, 1.0);
  ASSERT_NE(doc.find("deltas"), nullptr);
  EXPECT_EQ(doc.find("deltas")->array.size(), d.deltas.size());
  bool found = false;
  for (const JsonValue& item : doc.find("deltas")->array) {
    if (item.find("name")->string != "ring.length_mm") continue;
    found = true;
    EXPECT_EQ(item.find("class")->string, "quality");
    EXPECT_TRUE(item.find("regressed")->boolean);
  }
  EXPECT_TRUE(found);

  const std::string html = run_diff_html(d);
  EXPECT_NE(html.find("id=\"environment\""), std::string::npos);
  EXPECT_NE(html.find("id=\"gated\""), std::string::npos);
  EXPECT_NE(html.find("id=\"spans\""), std::string::npos);
  EXPECT_NE(html.find("id=\"memory\""), std::string::npos);
  EXPECT_NE(html.find("REGRESSION"), std::string::npos);
  EXPECT_NE(html.find("ring.length_mm"), std::string::npos);
  EXPECT_NE(html.find("synth;mapping"), std::string::npos)
      << "span paths feed the tree diff";
}

TEST_F(RunStoreFixture, AggregateComputesPerMetricStatistics) {
  Registry reg;
  RunStore store(root_);
  for (const double length : {100.0, 102.0, 104.0}) {
    reg.reset();
    reg.gauge("ring.length_mm").set(length);
    reg.gauge("other.metric").set(1.0);
    store.record(reg, {});
  }
  std::vector<RunRecord> runs;
  for (const auto& e : store.list()) runs.push_back(store.load(e.id));
  ASSERT_EQ(runs.size(), 3u);

  const auto stats = aggregate_runs(runs, "ring.");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "ring.length_mm");
  EXPECT_EQ(stats[0].count, 3);
  EXPECT_DOUBLE_EQ(stats[0].min, 100.0);
  EXPECT_DOUBLE_EQ(stats[0].max, 104.0);
  EXPECT_DOUBLE_EQ(stats[0].mean(), 102.0);
  EXPECT_GE(aggregate_runs(runs).size(), 2u);
}

}  // namespace
}  // namespace xring::obs
