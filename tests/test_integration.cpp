#include <gtest/gtest.h>

#include "baseline/oring.hpp"
#include "baseline/ornoc.hpp"
#include "crossbar/physical.hpp"
#include "xring/sweep.hpp"

// End-to-end checks of the paper's headline comparative claims, run on the
// standard networks with the full pipeline — these are the properties the
// benches then quantify.
namespace xring {
namespace {

struct Routers {
  explicit Routers(int n)
      : fp(netlist::Floorplan::standard(n)),
        synth(fp),
        ring(ring::build_ring(fp, synth.oracle(), {})) {
    SynthesisOptions xo;
    xo.mapping.max_wavelengths = n;
    xr = synth.run_with_ring(xo, ring);
    baseline::OrnocOptions oo;
    oo.max_wavelengths = n;
    ornoc = baseline::synthesize_ornoc(fp, ring, oo);
    baseline::OringOptions go;
    go.max_wavelengths = n;
    oring = baseline::synthesize_oring(fp, ring, go);
  }
  netlist::Floorplan fp;
  Synthesizer synth;
  ring::RingBuildResult ring;
  SynthesisResult xr, ornoc, oring;
};

TEST(PaperClaims, XRingHasZeroCrossingsOnWorstPath) {
  const Routers r(16);
  EXPECT_EQ(r.xr.metrics.worst_crossings, 0);
  EXPECT_GT(r.ornoc.metrics.worst_crossings, 0);
  EXPECT_GT(r.oring.metrics.worst_crossings, 0);
}

TEST(PaperClaims, XRingBeatsBaselinesOnWorstStarLoss) {
  const Routers r(16);
  EXPECT_LT(r.xr.metrics.il_star_worst_db, r.ornoc.metrics.il_star_worst_db);
  EXPECT_LT(r.xr.metrics.il_star_worst_db, r.oring.metrics.il_star_worst_db);
}

TEST(PaperClaims, XRingNeedsLessLaserPowerThanOrnoc) {
  // Paper: 64 % less at 32 nodes, ~44 % at 16.
  const Routers r(16);
  EXPECT_LT(r.xr.metrics.total_power_w, r.ornoc.metrics.total_power_w);
}

TEST(PaperClaims, AtLeast98PercentOfXRingSignalsAreClean) {
  const Routers r(16);
  const int total = r.xr.design.traffic.size();
  EXPECT_LE(r.xr.metrics.noisy_signals, total * 2 / 100);
}

TEST(PaperClaims, MostBaselineSignalsSufferNoise) {
  // Paper: 87 % of ORing signals suffer first-order noise at 16 nodes.
  const Routers r(16);
  const int total = r.oring.design.traffic.size();
  EXPECT_GT(r.oring.metrics.noisy_signals, total / 2);
}

TEST(PaperClaims, XRingSnrBeatsBaselines) {
  const Routers r(16);
  EXPECT_GT(r.xr.metrics.snr_worst_db, r.ornoc.metrics.snr_worst_db);
  EXPECT_GT(r.xr.metrics.snr_worst_db, r.oring.metrics.snr_worst_db);
}

TEST(PaperClaims, RingRoutersBeatCrossbarsOnLoss) {
  // Table I's overall message, at 16 nodes without PDNs.
  const auto fp = netlist::Floorplan::standard(16);
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.mapping.max_wavelengths = 16;
  opt.build_pdn = false;
  opt.params = phys::Parameters::proton_plus();
  const auto xr = synth.run(opt);

  const crossbar::Light light(16);
  const auto topro = crossbar::PhysicalSynthesis(
                         light, fp, crossbar::SynthesisStyle::kCompact,
                         phys::Parameters::proton_plus())
                         .evaluate();
  // Paper: XRing reduces worst loss by 41 % vs ToPro's Light.
  EXPECT_LT(xr.metrics.il_worst_db, topro.il_worst_db);
}

TEST(PaperClaims, SynthesisIsFast) {
  // "XRing automatically synthesizes the 16-node ring router within one
  // second."
  const Routers r(16);
  EXPECT_LT(r.xr.seconds, 1.0);
}

TEST(PaperClaims, ThirtyTwoNodePowerGapWidens) {
  const Routers r16(16);
  const Routers r32(32);
  const double gap16 =
      r16.ornoc.metrics.total_power_w / r16.xr.metrics.total_power_w;
  const double gap32 =
      r32.ornoc.metrics.total_power_w / r32.xr.metrics.total_power_w;
  EXPECT_GT(gap32, gap16);  // the advantage grows with network size
}

}  // namespace
}  // namespace xring
