#include <gtest/gtest.h>

#include "analysis/tuning.hpp"
#include "xring/synthesizer.hpp"

namespace xring::analysis {
namespace {

TEST(Tuning, RingRouterCountsFollowSignals) {
  const auto fp = netlist::Floorplan::standard(16);
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.mapping.max_wavelengths = 16;
  const auto r = synth.run(opt);
  const MrrInventory inv = count_mrrs(r.design);
  EXPECT_EQ(inv.modulators, 240);
  EXPECT_EQ(inv.drop_filters, 240);
  EXPECT_EQ(inv.residue_filters, 240);  // Fig. 5(b) filter on by default
  EXPECT_EQ(inv.switching, 0);          // no fabric in a ring router
  EXPECT_EQ(inv.total(), 720 + inv.cse_mrrs);
}

TEST(Tuning, ResidueFilterTogglesItsRings) {
  const auto fp = netlist::Floorplan::standard(8);
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.params.crosstalk.residue_filter = false;
  const auto r = synth.run(opt);
  EXPECT_EQ(count_mrrs(r.design).residue_filters, 0);
}

TEST(Tuning, CrossbarsCarrySwitchingFabric) {
  const crossbar::LambdaRouter lambda(16);
  const crossbar::Light light(16);
  const MrrInventory li = count_mrrs(lambda);
  const MrrInventory gi = count_mrrs(light);
  EXPECT_GT(li.switching, 0);
  EXPECT_GT(gi.switching, 0);
  // Light's design goal is fewer rings than the λ-router.
  EXPECT_LT(gi.switching, li.switching);
}

TEST(Tuning, RingRouterBeatsCrossbarsOnTuningPower) {
  // The paper's introduction claim.
  const auto fp = netlist::Floorplan::standard(16);
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.mapping.max_wavelengths = 16;
  const auto r = synth.run(opt);
  const double ring_w = tuning_power_w(count_mrrs(r.design));
  const double lambda_w = tuning_power_w(count_mrrs(crossbar::LambdaRouter(16)));
  EXPECT_LT(ring_w, lambda_w);
}

TEST(Tuning, PowerScalesWithPerRingBudget) {
  MrrInventory inv;
  inv.modulators = 100;
  EXPECT_DOUBLE_EQ(tuning_power_w(inv, 0.1), 0.01);
  EXPECT_DOUBLE_EQ(tuning_power_w(inv, 1.0), 0.1);
}

}  // namespace
}  // namespace xring::analysis
