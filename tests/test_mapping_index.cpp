// Differential test of the incremental arc-occupancy index
// (mapping/occupancy.hpp) against the brute-force reference predicates and
// against verbatim re-implementations of the pre-index Step-3 algorithms.
//
// The index's contract is BIT-IDENTICAL behavior: same probe order, same
// first-fit choices, same tie-breaks, same openings, same relocation and
// overflow decisions — it only evaluates the same predicates faster. Every
// test here therefore asserts exact equality of complete mappings, not just
// metric-level agreement. Coverage includes all-to-all n ∈ {8, 16, 32},
// seeded randomized traffic patterns, post-relocation states (a fresh index
// over the opening phase's output still agrees with brute force), and the
// undo-journal rollback path.

#include "mapping/occupancy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "mapping/opening.hpp"
#include "ring/builder.hpp"
#include "shortcut/shortcut.hpp"

namespace xring::mapping {
namespace {

using netlist::NodeId;
using netlist::Traffic;

// --------------------------------------------------------------------------
// Reference implementations: the exact pre-index Step-3 hot loops (deep-copy
// transactions, per-probe occupied_hops/interior_nodes derivation), built on
// the exported brute-force predicates `fits` / `passing_signals`.

std::pair<int, int> ref_place_on_ring(const ring::Tour& tour,
                                      const Traffic& traffic, Mapping& m,
                                      Direction dir, SignalId id,
                                      int max_wavelengths) {
  for (int w = 0; w < static_cast<int>(m.waveguides.size()); ++w) {
    if (m.waveguides[w].dir != dir) continue;
    for (int wl = 0; wl < max_wavelengths; ++wl) {
      if (fits(tour, traffic, m, w, wl, id)) return {w, wl};
    }
  }
  return {m.add_waveguide(dir), 0};
}

Mapping ref_assign_wavelengths(const ring::Tour& tour, const Traffic& traffic,
                               const shortcut::ShortcutPlan& shortcuts,
                               const MappingOptions& options) {
  Mapping m;
  m.routes.assign(traffic.size(), SignalRoute{});

  if (options.use_shortcuts) {
    for (const auto& sig : traffic.signals()) {
      const int sc = shortcuts.shortcuts.empty()
                         ? -1
                         : shortcuts.find(sig.src, sig.dst);
      if (sc < 0) continue;
      SignalRoute& r = m.routes[sig.id];
      r.kind = RouteKind::kShortcut;
      r.shortcut = sc;
      const shortcut::Shortcut& s = shortcuts.shortcuts[sc];
      if (s.crossing_partner < 0) {
        r.wavelength = 0;
      } else {
        r.wavelength = sc < s.crossing_partner ? 0 : 1;
      }
    }
    for (std::size_t c = 0; c < shortcuts.cse_routes.size(); ++c) {
      const shortcut::CseRoute& route = shortcuts.cse_routes[c];
      // The pre-index linear rescan: first traffic signal with the pair.
      for (const auto& sig : traffic.signals()) {
        if (sig.src != route.src || sig.dst != route.dst) continue;
        SignalRoute& r = m.routes[sig.id];
        if (r.kind == RouteKind::kShortcut) break;
        const geom::Coord ring_len =
            std::min(tour.arc_length_cw(sig.src, sig.dst),
                     tour.arc_length_ccw(sig.src, sig.dst));
        const bool better_than_current =
            r.kind != RouteKind::kCse ||
            route.length < shortcuts.cse_routes[r.cse].length;
        if (route.length < ring_len && better_than_current) {
          r.kind = RouteKind::kCse;
          r.cse = static_cast<int>(c);
          r.wavelength = route.shortcut_in < route.shortcut_out ? 2 : 3;
        }
        break;
      }
    }
  }

  std::vector<SignalId> ring_signals;
  for (const auto& sig : traffic.signals()) {
    if (m.routes[sig.id].kind == RouteKind::kUnrouted) {
      ring_signals.push_back(sig.id);
    }
  }
  auto shorter_arc = [&](SignalId id) {
    const auto& sig = traffic.signal(id);
    return std::min(tour.arc_length_cw(sig.src, sig.dst),
                    tour.arc_length_ccw(sig.src, sig.dst));
  };
  std::stable_sort(ring_signals.begin(), ring_signals.end(),
                   [&](SignalId x, SignalId y) {
                     return shorter_arc(x) > shorter_arc(y);
                   });

  for (const SignalId id : ring_signals) {
    const auto& sig = traffic.signal(id);
    const geom::Coord cw = tour.arc_length_cw(sig.src, sig.dst);
    const geom::Coord ccw = tour.arc_length_ccw(sig.src, sig.dst);
    const Direction dir = cw <= ccw ? Direction::kCw : Direction::kCcw;
    const auto [w, wl] =
        ref_place_on_ring(tour, traffic, m, dir, id, options.max_wavelengths);
    SignalRoute& r = m.routes[id];
    r.kind = dir == Direction::kCw ? RouteKind::kRingCw : RouteKind::kRingCcw;
    r.waveguide = w;
    r.wavelength = wl;
    m.waveguides[w].signals.push_back(id);
  }

  int max_wl = -1;
  for (const SignalRoute& r : m.routes) max_wl = std::max(max_wl, r.wavelength);
  m.wavelengths_used = max_wl + 1;
  return m;
}

std::pair<bool, bool> ref_relocate(const ring::Tour& tour,
                                   const Traffic& traffic, Mapping& mapping,
                                   int from, SignalId id, int max_wavelengths,
                                   bool allow_new) {
  const Direction dir = mapping.waveguides[from].dir;
  for (int w = 0; w < static_cast<int>(mapping.waveguides.size()); ++w) {
    if (w == from || mapping.waveguides[w].dir != dir) continue;
    for (int wl = 0; wl < max_wavelengths; ++wl) {
      if (!fits(tour, traffic, mapping, w, wl, id)) continue;
      auto& sigs = mapping.waveguides[from].signals;
      sigs.erase(std::remove(sigs.begin(), sigs.end(), id), sigs.end());
      mapping.waveguides[w].signals.push_back(id);
      mapping.routes[id].waveguide = w;
      mapping.routes[id].wavelength = wl;
      return {true, false};
    }
  }
  if (!allow_new) return {false, false};
  const int w = mapping.add_waveguide(dir);
  auto& sigs = mapping.waveguides[from].signals;
  sigs.erase(std::remove(sigs.begin(), sigs.end(), id), sigs.end());
  mapping.waveguides[w].signals.push_back(id);
  mapping.routes[id].waveguide = w;
  mapping.routes[id].wavelength = 0;
  return {true, true};
}

std::vector<SignalId> ref_signals_passing(const ring::Tour& tour,
                                          const Traffic& traffic,
                                          const Mapping& mapping, int w,
                                          NodeId node) {
  std::vector<SignalId> out;
  const Direction dir = mapping.waveguides[w].dir;
  for (const SignalId id : mapping.waveguides[w].signals) {
    const auto& sig = traffic.signal(id);
    const auto interior = interior_nodes(tour, sig.src, sig.dst, dir);
    if (std::find(interior.begin(), interior.end(), node) != interior.end()) {
      out.push_back(id);
    }
  }
  return out;
}

OpeningStats ref_create_openings(const ring::Tour& tour,
                                 const Traffic& traffic, Mapping& mapping,
                                 const MappingOptions& mapping_options) {
  OpeningStats stats;
  for (int w = 0; w < static_cast<int>(mapping.waveguides.size()); ++w) {
    std::vector<std::pair<int, NodeId>> candidates;
    for (int pos = 0; pos < tour.size(); ++pos) {
      const NodeId v = tour.at(pos);
      candidates.emplace_back(passing_signals(tour, traffic, mapping, w, v),
                              v);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });

    bool placed = false;
    for (const auto& [count, node] : candidates) {
      if (count == 0) {
        mapping.waveguides[w].opening = node;
        placed = true;
        break;
      }
      Mapping trial = mapping;  // the pre-index deep-copy transaction
      bool ok = true;
      int moved_here = 0;
      for (const SignalId id :
           ref_signals_passing(tour, traffic, mapping, w, node)) {
        const auto [moved, added] =
            ref_relocate(tour, traffic, trial, w, id,
                         mapping_options.max_wavelengths, /*allow_new=*/false);
        (void)added;
        if (!moved) {
          ok = false;
          break;
        }
        ++moved_here;
      }
      if (ok) {
        mapping = std::move(trial);
        mapping.waveguides[w].opening = node;
        stats.relocated_signals += moved_here;
        placed = true;
        break;
      }
    }

    if (!placed) {
      const NodeId node = candidates.front().second;
      for (const SignalId id :
           ref_signals_passing(tour, traffic, mapping, w, node)) {
        const auto [moved, added] =
            ref_relocate(tour, traffic, mapping, w, id,
                         mapping_options.max_wavelengths, /*allow_new=*/true);
        stats.relocated_signals += moved ? 1 : 0;
        stats.extra_waveguides += added ? 1 : 0;
      }
      mapping.waveguides[w].opening = node;
    }
  }

  int max_wl = -1;
  for (const SignalRoute& r : mapping.routes) {
    max_wl = std::max(max_wl, r.wavelength);
  }
  mapping.wavelengths_used = max_wl + 1;
  return stats;
}

// --------------------------------------------------------------------------

void expect_mappings_identical(const Mapping& a, const Mapping& b) {
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i].kind, b.routes[i].kind) << "signal " << i;
    EXPECT_EQ(a.routes[i].waveguide, b.routes[i].waveguide) << "signal " << i;
    EXPECT_EQ(a.routes[i].wavelength, b.routes[i].wavelength) << "signal " << i;
    EXPECT_EQ(a.routes[i].shortcut, b.routes[i].shortcut) << "signal " << i;
    EXPECT_EQ(a.routes[i].cse, b.routes[i].cse) << "signal " << i;
  }
  ASSERT_EQ(a.waveguides.size(), b.waveguides.size());
  for (std::size_t w = 0; w < a.waveguides.size(); ++w) {
    EXPECT_EQ(a.waveguides[w].dir, b.waveguides[w].dir) << "waveguide " << w;
    EXPECT_EQ(a.waveguides[w].opening, b.waveguides[w].opening)
        << "waveguide " << w;
    EXPECT_EQ(a.waveguides[w].signals, b.waveguides[w].signals)
        << "waveguide " << w;
  }
  EXPECT_EQ(a.wavelengths_used, b.wavelengths_used);
  EXPECT_EQ(a.ring_waveguides(Direction::kCw), b.ring_waveguides(Direction::kCw));
  EXPECT_EQ(a.ring_waveguides(Direction::kCcw),
            b.ring_waveguides(Direction::kCcw));
}

/// Asserts a freshly built index over `mapping` agrees with the brute-force
/// predicates on every (waveguide, wavelength, signal) and (waveguide, node).
void expect_index_agrees(const ring::Tour& tour, const Traffic& traffic,
                         Mapping& mapping, int max_wavelengths) {
  const ArcTable arcs(tour, traffic);
  const OccupancyIndex index(arcs, mapping);
  for (int w = 0; w < static_cast<int>(mapping.waveguides.size()); ++w) {
    for (int pos = 0; pos < tour.size(); ++pos) {
      const NodeId v = tour.at(pos);
      EXPECT_EQ(index.passing_count(w, pos),
                passing_signals(tour, traffic, mapping, w, v))
          << "w=" << w << " pos=" << pos;
      EXPECT_EQ(index.signals_passing(w, v),
                ref_signals_passing(tour, traffic, mapping, w, v))
          << "w=" << w << " pos=" << pos;
    }
    for (const auto& sig : traffic.signals()) {
      for (int wl = 0; wl < max_wavelengths; ++wl) {
        EXPECT_EQ(index.fits(w, wl, sig.id),
                  fits(tour, traffic, mapping, w, wl, sig.id))
            << "w=" << w << " wl=" << wl << " signal=" << sig.id;
      }
    }
  }
}

Traffic random_traffic(int nodes, int signal_count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, nodes - 1);
  std::set<std::pair<int, int>> used;
  std::vector<netlist::Signal> signals;
  while (static_cast<int>(signals.size()) < signal_count) {
    const int src = pick(rng);
    const int dst = pick(rng);
    if (src == dst || !used.insert({src, dst}).second) continue;
    netlist::Signal s;
    s.id = static_cast<int>(signals.size());
    s.src = src;
    s.dst = dst;
    signals.push_back(s);
  }
  return Traffic(std::move(signals));
}

struct Instance {
  ring::RingGeometry ring;
  Traffic traffic;
  shortcut::ShortcutPlan plan;
};

Instance make_instance(int nodes, const Traffic& traffic,
                       bool with_shortcuts) {
  const auto fp = netlist::Floorplan::standard(nodes);
  Instance inst;
  inst.ring = ring::build_ring(fp).geometry;
  inst.traffic = traffic;
  if (with_shortcuts) inst.plan = shortcut::build_shortcuts(inst.ring, fp);
  return inst;
}

class MappingIndexAllToAll : public ::testing::TestWithParam<int> {};

TEST_P(MappingIndexAllToAll, ArcTableMatchesHopDerivation) {
  const int n = GetParam();
  const Instance inst = make_instance(n, Traffic::all_to_all(n), false);
  const ring::Tour& tour = inst.ring.tour;
  const ArcTable arcs(tour, inst.traffic);
  for (const auto& sig : inst.traffic.signals()) {
    for (const Direction dir : {Direction::kCw, Direction::kCcw}) {
      const auto hops = occupied_hops(tour, sig.src, sig.dst, dir);
      const std::set<int> hop_set(hops.begin(), hops.end());
      const std::uint64_t* mask = arcs.mask(sig.id, dir);
      for (int h = 0; h < tour.size(); ++h) {
        const bool bit = (mask[h >> 6] >> (h & 63)) & 1;
        EXPECT_EQ(bit, hop_set.count(h) > 0)
            << "signal " << sig.id << " hop " << h;
      }
      const auto interior = interior_nodes(tour, sig.src, sig.dst, dir);
      const std::set<NodeId> interior_set(interior.begin(), interior.end());
      for (int pos = 0; pos < tour.size(); ++pos) {
        EXPECT_EQ(arcs.interior_contains(sig.id, dir, pos),
                  interior_set.count(tour.at(pos)) > 0)
            << "signal " << sig.id << " pos " << pos;
      }
    }
  }
}

TEST_P(MappingIndexAllToAll, AssignAndOpeningsMatchReference) {
  const int n = GetParam();
  for (const bool with_shortcuts : {false, true}) {
    const Instance inst =
        make_instance(n, Traffic::all_to_all(n), with_shortcuts);
    MappingOptions mo;
    mo.max_wavelengths = n / 2;  // tight cap: exercises overflow + conflicts
    mo.use_shortcuts = with_shortcuts;

    Mapping indexed = assign_wavelengths(inst.ring.tour, inst.traffic,
                                         inst.plan, mo);
    Mapping reference =
        ref_assign_wavelengths(inst.ring.tour, inst.traffic, inst.plan, mo);
    expect_mappings_identical(indexed, reference);
    expect_index_agrees(inst.ring.tour, inst.traffic, indexed,
                        mo.max_wavelengths);

    const OpeningStats is =
        create_openings(inst.ring.tour, inst.traffic, indexed, mo);
    const OpeningStats rs =
        ref_create_openings(inst.ring.tour, inst.traffic, reference, mo);
    EXPECT_EQ(is.relocated_signals, rs.relocated_signals);
    EXPECT_EQ(is.extra_waveguides, rs.extra_waveguides);
    expect_mappings_identical(indexed, reference);
    // Post-relocation state: a fresh index over the opening phase's output
    // still agrees with brute force everywhere.
    expect_index_agrees(inst.ring.tour, inst.traffic, indexed,
                        mo.max_wavelengths);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MappingIndexAllToAll,
                         ::testing::Values(8, 16, 32));

TEST(MappingIndexRandom, AssignAndOpeningsMatchReferenceSeeded) {
  const int n = 16;
  for (const unsigned seed : {1u, 7u, 42u, 1337u}) {
    const Traffic traffic = random_traffic(n, 80, seed);
    const Instance inst = make_instance(n, traffic, true);
    MappingOptions mo;
    mo.max_wavelengths = 4;  // very tight: forces relocation overflow paths
    Mapping indexed =
        assign_wavelengths(inst.ring.tour, inst.traffic, inst.plan, mo);
    Mapping reference =
        ref_assign_wavelengths(inst.ring.tour, inst.traffic, inst.plan, mo);
    expect_mappings_identical(indexed, reference);

    const OpeningStats is =
        create_openings(inst.ring.tour, inst.traffic, indexed, mo);
    const OpeningStats rs =
        ref_create_openings(inst.ring.tour, inst.traffic, reference, mo);
    EXPECT_EQ(is.relocated_signals, rs.relocated_signals) << "seed " << seed;
    EXPECT_EQ(is.extra_waveguides, rs.extra_waveguides) << "seed " << seed;
    expect_mappings_identical(indexed, reference);
    expect_index_agrees(inst.ring.tour, inst.traffic, indexed,
                        mo.max_wavelengths);
  }
}

TEST(MappingIndexTransaction, RollbackRestoresExactState) {
  const int n = 16;
  const Instance inst = make_instance(n, Traffic::all_to_all(n), true);
  MappingOptions mo;
  mo.max_wavelengths = n;
  Mapping mapping =
      assign_wavelengths(inst.ring.tour, inst.traffic, inst.plan, mo);
  const Mapping snapshot = mapping;

  const ArcTable arcs(inst.ring.tour, inst.traffic);
  OccupancyIndex index(arcs, mapping);

  // Move every relocatable signal of waveguide 0 somewhere else, then roll
  // everything back.
  ASSERT_FALSE(mapping.waveguides.empty());
  const std::vector<SignalId> signals = mapping.waveguides[0].signals;
  index.begin_transaction();
  int moved = 0;
  for (const SignalId id : signals) {
    const Direction dir = mapping.waveguides[0].dir;
    for (int w = 1; w < static_cast<int>(mapping.waveguides.size()); ++w) {
      if (mapping.waveguides[w].dir != dir) continue;
      bool done = false;
      for (int wl = 0; wl < mo.max_wavelengths && !done; ++wl) {
        if (index.fits(w, wl, id)) {
          index.relocate(id, w, wl);
          ++moved;
          done = true;
        }
      }
      if (done) break;
    }
  }
  ASSERT_GT(moved, 0) << "test needs at least one journaled relocation";
  index.rollback();

  expect_mappings_identical(mapping, snapshot);
  // The rolled-back index has not drifted: it still matches brute force.
  expect_index_agrees(inst.ring.tour, inst.traffic, mapping,
                      mo.max_wavelengths);

  // And a committed transaction keeps its effect.
  index.begin_transaction();
  bool committed = false;
  for (const SignalId id : mapping.waveguides[0].signals) {
    for (int w = 1;
         w < static_cast<int>(mapping.waveguides.size()) && !committed; ++w) {
      if (mapping.waveguides[w].dir != mapping.waveguides[0].dir) continue;
      for (int wl = 0; wl < mo.max_wavelengths && !committed; ++wl) {
        if (index.fits(w, wl, id)) {
          index.relocate(id, w, wl);
          committed = true;
        }
      }
    }
    if (committed) break;
  }
  ASSERT_TRUE(committed);
  index.commit();
  EXPECT_NE(mapping.waveguides[0].signals, snapshot.waveguides[0].signals);
  expect_index_agrees(inst.ring.tour, inst.traffic, mapping,
                      mo.max_wavelengths);
}

TEST(MappingIndexShared, SharedArcTableIsBitIdentical) {
  const int n = 16;
  const Instance inst = make_instance(n, Traffic::all_to_all(n), true);
  const ArcTable shared(inst.ring.tour, inst.traffic);
  MappingOptions mo;
  mo.max_wavelengths = 10;

  Mapping with_shared = assign_wavelengths(inst.ring.tour, inst.traffic,
                                           inst.plan, mo, &shared);
  Mapping without = assign_wavelengths(inst.ring.tour, inst.traffic,
                                       inst.plan, mo, nullptr);
  expect_mappings_identical(with_shared, without);

  create_openings(inst.ring.tour, inst.traffic, with_shared, mo, {}, &shared);
  create_openings(inst.ring.tour, inst.traffic, without, mo, {}, nullptr);
  expect_mappings_identical(with_shared, without);
}

}  // namespace
}  // namespace xring::mapping
