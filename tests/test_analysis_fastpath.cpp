// Differential testing of the indexed analysis engine against the verbatim
// pre-index reference (analysis/reference.cpp): for every design family the
// fast path must reproduce the reference RouterMetrics byte for byte —
// EXPECT_EQ on doubles, no tolerance — because the index changes only which
// pairs get *visited*, never the arithmetic or its order. Also holds the
// crossbar's precomputed path() against path_reference() over all pairs.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "analysis/evaluate.hpp"
#include "analysis/reference.hpp"
#include "analysis/substrate.hpp"
#include "crossbar/physical.hpp"
#include "xring/synthesizer.hpp"

namespace xring::analysis {
namespace {

void expect_metrics_equal(const RouterMetrics& a, const RouterMetrics& b) {
  EXPECT_EQ(a.wavelengths, b.wavelengths);
  EXPECT_EQ(a.waveguides, b.waveguides);
  EXPECT_EQ(a.il_worst_db, b.il_worst_db);
  EXPECT_EQ(a.il_star_worst_db, b.il_star_worst_db);
  EXPECT_EQ(a.worst_path_mm, b.worst_path_mm);
  EXPECT_EQ(a.worst_crossings, b.worst_crossings);
  EXPECT_EQ(a.total_power_w, b.total_power_w);
  EXPECT_EQ(a.noisy_signals, b.noisy_signals);
  EXPECT_EQ(a.snr_worst_db, b.snr_worst_db);
  EXPECT_EQ(a.laser_mw, b.laser_mw);

  ASSERT_EQ(a.signals.size(), b.signals.size());
  for (std::size_t i = 0; i < a.signals.size(); ++i) {
    const SignalReport& x = a.signals[i];
    const SignalReport& y = b.signals[i];
    EXPECT_EQ(x.il_db, y.il_db) << "signal " << i;
    EXPECT_EQ(x.il_star_db, y.il_star_db) << "signal " << i;
    EXPECT_EQ(x.path_mm, y.path_mm) << "signal " << i;
    EXPECT_EQ(x.crossings, y.crossings) << "signal " << i;
    EXPECT_EQ(x.through_mrrs, y.through_mrrs) << "signal " << i;
    EXPECT_EQ(x.noise_mw, y.noise_mw) << "signal " << i;
    EXPECT_EQ(x.signal_mw, y.signal_mw) << "signal " << i;
    EXPECT_EQ(x.snr_db, y.snr_db) << "signal " << i;
  }

  ASSERT_EQ(a.loss_ledger.size(), b.loss_ledger.size());
  for (std::size_t i = 0; i < a.loss_ledger.size(); ++i) {
    const LossBreakdown& x = a.loss_ledger[i];
    const LossBreakdown& y = b.loss_ledger[i];
    EXPECT_EQ(x.propagation_db, y.propagation_db) << "signal " << i;
    EXPECT_EQ(x.modulator_db, y.modulator_db) << "signal " << i;
    EXPECT_EQ(x.drop_db, y.drop_db) << "signal " << i;
    EXPECT_EQ(x.through_db, y.through_db) << "signal " << i;
    EXPECT_EQ(x.crossing_db, y.crossing_db) << "signal " << i;
    EXPECT_EQ(x.bend_db, y.bend_db) << "signal " << i;
    EXPECT_EQ(x.photodetector_db, y.photodetector_db) << "signal " << i;
    EXPECT_EQ(x.pdn_db, y.pdn_db) << "signal " << i;
    EXPECT_EQ(x.coupler_db, y.coupler_db) << "signal " << i;
    EXPECT_EQ(x.path_mm, y.path_mm) << "signal " << i;
    EXPECT_EQ(x.crossings, y.crossings) << "signal " << i;
    EXPECT_EQ(x.through_mrrs, y.through_mrrs) << "signal " << i;
    EXPECT_EQ(x.bends, y.bends) << "signal " << i;
  }

  // The attribution ledger must match row for row, in order: the replay
  // that builds it is part of the determinism contract.
  ASSERT_EQ(a.xtalk_ledger.size(), b.xtalk_ledger.size());
  for (std::size_t i = 0; i < a.xtalk_ledger.size(); ++i) {
    const XtalkContribution& x = a.xtalk_ledger[i];
    const XtalkContribution& y = b.xtalk_ledger[i];
    EXPECT_EQ(x.victim, y.victim) << "row " << i;
    EXPECT_EQ(x.aggressor, y.aggressor) << "row " << i;
    EXPECT_EQ(x.source, y.source) << "row " << i;
    EXPECT_EQ(x.node, y.node) << "row " << i;
    EXPECT_EQ(x.noise_mw, y.noise_mw) << "row " << i;
  }
}

void expect_fast_path_matches_reference(const RouterDesign& d) {
  expect_metrics_equal(evaluate(d), reference::evaluate_reference(d));
}

TEST(AnalysisFastPath, AllToAllMatchesReference) {
  for (const int n : {8, 16, 32}) {
    SCOPED_TRACE(n);
    const auto fp = netlist::Floorplan::standard(n);
    const Synthesizer synth(fp);
    const SynthesisResult r = synth.run();
    expect_fast_path_matches_reference(r.design);
    expect_metrics_equal(r.metrics, reference::evaluate_reference(r.design));
  }
}

TEST(AnalysisFastPath, SeededRandomTrafficMatchesReference) {
  const int n = 16;
  const auto fp = netlist::Floorplan::standard(n);
  const Synthesizer synth(fp);
  std::mt19937 rng(6021023);
  std::uniform_int_distribution<int> node(0, n - 1);
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE(round);
    std::vector<netlist::Signal> signals;
    for (netlist::SignalId id = 0; id < 40; ++id) {
      netlist::NodeId src = node(rng), dst = node(rng);
      while (dst == src) dst = node(rng);
      signals.push_back({id, src, dst});
    }
    SynthesisOptions opt;
    opt.traffic = netlist::Traffic(std::move(signals));
    const SynthesisResult r = synth.run(opt);
    expect_fast_path_matches_reference(r.design);
  }
}

TEST(AnalysisFastPath, CrossingRingAblationMatchesReference) {
  // A deliberately bad fixed tour whose realized geometry self-crosses,
  // exercising the kRingCrossing noise path the synthesized (crossing-free)
  // rings never reach.
  const auto fp = netlist::Floorplan::standard(16);
  const std::vector<netlist::NodeId> order = {0, 9, 2, 11, 4,  13, 6, 15,
                                              8, 1, 10, 3,  12, 5,  14, 7};
  ring::RingBuildResult ring;
  ring.geometry = ring::realize(ring::Tour(order, &fp), fp);
  ASSERT_GT(ring.geometry.crossings, 0);
  const Synthesizer synth(fp);
  const SynthesisResult r = synth.run_with_ring({}, ring);
  expect_fast_path_matches_reference(r.design);
}

TEST(AnalysisFastPath, VariantConfigurationsMatchReference) {
  const auto fp = netlist::Floorplan::standard(16);
  const Synthesizer synth(fp);
  {
    SCOPED_TRACE("comb pdn");
    SynthesisOptions opt;
    opt.pdn_style = SynthesisOptions::PdnStyle::kComb;
    expect_fast_path_matches_reference(synth.run(opt).design);
  }
  {
    SCOPED_TRACE("no residue filter");
    SynthesisOptions opt;
    opt.params.crosstalk.residue_filter = false;
    expect_fast_path_matches_reference(synth.run(opt).design);
  }
  {
    SCOPED_TRACE("no pdn");
    SynthesisOptions opt;
    opt.build_pdn = false;
    expect_fast_path_matches_reference(synth.run(opt).design);
  }
}

TEST(AnalysisFastPath, SharedSubstrateMatchesLocal) {
  // evaluate() with a SweepCache-style shared substrate must be
  // bit-identical to evaluate() building its own locals.
  const auto fp = netlist::Floorplan::standard(16);
  const Synthesizer synth(fp);
  const SynthesisResult r = synth.run();
  const RouterDesign& d = r.design;
  const RingSubstrate substrate(d.ring, *d.floorplan);
  const mapping::ArcTable arcs(d.ring.tour, d.traffic);
  expect_metrics_equal(evaluate(d, EvalShared{&substrate, &arcs}),
                       evaluate(d));
}

TEST(AnalysisFastPath, CrossbarPathMatchesReference) {
  using crossbar::CrossbarPath;
  using crossbar::PhysicalSynthesis;
  using crossbar::SynthesisStyle;
  const int n = 16;
  const auto fp = netlist::Floorplan::standard(n);
  const auto params = phys::Parameters::proton_plus();
  const crossbar::LambdaRouter topo(n);
  for (const SynthesisStyle style :
       {SynthesisStyle::kNaive, SynthesisStyle::kPlanarized,
        SynthesisStyle::kCompact}) {
    SCOPED_TRACE(crossbar::to_string(style));
    const PhysicalSynthesis ps(topo, fp, style, params);
    for (crossbar::NodeId s = 0; s < n; ++s) {
      for (crossbar::NodeId d = 0; d < n; ++d) {
        if (s == d) continue;
        const CrossbarPath fast = ps.path(s, d);
        const CrossbarPath ref = ps.path_reference(s, d);
        EXPECT_EQ(fast.length_mm, ref.length_mm) << s << "->" << d;
        EXPECT_EQ(fast.crossings, ref.crossings) << s << "->" << d;
        EXPECT_EQ(fast.drops, ref.drops) << s << "->" << d;
        EXPECT_EQ(fast.throughs, ref.throughs) << s << "->" << d;
        EXPECT_EQ(fast.il_db, ref.il_db) << s << "->" << d;
      }
    }
  }
}

}  // namespace
}  // namespace xring::analysis
