// Edge cases across the whole stack: the smallest legal networks, collinear
// and degenerate geometry, extreme option values — the inputs a released
// tool must not fall over on.

#include <gtest/gtest.h>

#include "baseline/oring.hpp"
#include "verify/drc.hpp"
#include "xring/sweep.hpp"

namespace xring {
namespace {

netlist::Floorplan points(std::initializer_list<geom::Point> pts) {
  std::vector<netlist::Node> nodes;
  for (const geom::Point& p : pts) nodes.push_back({0, p, ""});
  return netlist::Floorplan(std::move(nodes), 20000, 20000);
}

TEST(EdgeCases, ThreeNodeTriangleSynthesizes) {
  const auto fp = points({{0, 0}, {4000, 0}, {2000, 3000}});
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.mapping.max_wavelengths = 3;
  const SynthesisResult r = synth.run(opt);
  EXPECT_EQ(static_cast<int>(r.design.mapping.routes.size()), 6);
  verify::DrcOptions drc;
  drc.max_wavelengths = 3;
  EXPECT_TRUE(verify::check(r.design, drc).empty());
}

TEST(EdgeCases, CollinearNodesStillFormARing) {
  // All nodes on one line: every ring "loop" degenerates to overlapping
  // back-and-forth runs (legal as parallel waveguides).
  const auto fp = points({{0, 0}, {2000, 0}, {4000, 0}, {6000, 0}});
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.mapping.max_wavelengths = 4;
  const SynthesisResult r = synth.run(opt);
  EXPECT_EQ(r.design.ring.tour.size(), 4);
  EXPECT_EQ(r.design.ring.crossings, 0);
  for (const auto& route : r.design.mapping.routes) {
    EXPECT_NE(route.kind, mapping::RouteKind::kUnrouted);
  }
}

TEST(EdgeCases, WavelengthCapOfOne) {
  // #wl = 1 forces maximal waveguide counts but must still succeed.
  const auto fp = netlist::Floorplan::standard(8);
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.mapping.max_wavelengths = 1;
  const SynthesisResult r = synth.run(opt);
  for (const auto& route : r.design.mapping.routes) {
    EXPECT_NE(route.kind, mapping::RouteKind::kUnrouted);
    if (route.kind == mapping::RouteKind::kRingCw ||
        route.kind == mapping::RouteKind::kRingCcw) {
      EXPECT_EQ(route.wavelength, 0);
    }
  }
  EXPECT_GT(r.metrics.waveguides, 8);
}

TEST(EdgeCases, SingleSignalTraffic) {
  const auto fp = netlist::Floorplan::standard(8);
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.traffic = netlist::Traffic({netlist::Signal{0, 2, 6}});
  const SynthesisResult r = synth.run(opt);
  ASSERT_EQ(r.metrics.signals.size(), 1u);
  EXPECT_GT(r.metrics.signals[0].path_mm, 0.0);
  EXPECT_EQ(r.metrics.noisy_signals, 0);
  EXPECT_EQ(r.metrics.wavelengths, 1);
}

TEST(EdgeCases, HugePitchOnlyScalesPropagation) {
  const auto small = netlist::Floorplan::standard(8, 1000);
  const auto large = netlist::Floorplan::standard(8, 10000);
  Synthesizer ss(small), sl(large);
  SynthesisOptions opt;
  opt.mapping.max_wavelengths = 8;
  opt.build_pdn = false;
  const auto rs = ss.run(opt);
  const auto rl = sl.run(opt);
  EXPECT_NEAR(rl.metrics.worst_path_mm / rs.metrics.worst_path_mm, 10.0, 0.5);
  // Device losses identical; only propagation scales.
  const double prop_small =
      rs.metrics.worst_path_mm * opt.params.loss.propagation_db_per_mm;
  const double prop_large =
      rl.metrics.worst_path_mm * opt.params.loss.propagation_db_per_mm;
  EXPECT_NEAR(rl.metrics.il_star_worst_db - prop_large,
              rs.metrics.il_star_worst_db - prop_small, 0.2);
}

TEST(EdgeCases, ZeroLossParametersGiveZeroStarLoss) {
  const auto fp = netlist::Floorplan::standard(8);
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.build_pdn = false;
  opt.params.loss = phys::LossParams{};
  opt.params.loss.propagation_db_per_mm = 0;
  opt.params.loss.drop_db = 0;
  opt.params.loss.through_db = 0;
  opt.params.loss.crossing_db = 0;
  opt.params.loss.bend_db = 0;
  opt.params.loss.modulator_db = 0;
  opt.params.loss.photodetector_db = 0;
  const SynthesisResult r = synth.run(opt);
  EXPECT_NEAR(r.metrics.il_star_worst_db, 0.0, 1e-12);
}

TEST(EdgeCases, SweepDegenerateRange) {
  const auto fp = netlist::Floorplan::standard(8);
  Synthesizer synth(fp);
  const SweepResult r =
      sweep_xring(synth, SynthesisOptions{}, SweepGoal::kMinPower, 4, 4);
  EXPECT_EQ(r.settings_tried, 1);
  EXPECT_EQ(r.best_wl, 4);
}

TEST(EdgeCases, TwoNodeRingRejected) {
  const auto fp = points({{0, 0}, {1000, 0}});
  EXPECT_THROW(ring::build_ring(fp), std::invalid_argument);
}

TEST(EdgeCases, DuplicatePositionsAreTolerated) {
  // Two interfaces at the same spot (stacked dies): distance-0 edges are
  // legal and the tour simply visits both in sequence.
  const auto fp = points({{0, 0}, {0, 0}, {4000, 0}, {4000, 4000}});
  const auto r = ring::build_ring(fp);
  EXPECT_EQ(r.geometry.tour.size(), 4);
  EXPECT_EQ(r.geometry.tour.total_length(), 16000);
}

TEST(EdgeCases, OringBaselineHandlesTinyNetworks) {
  const auto fp = points({{0, 0}, {4000, 0}, {2000, 3000}});
  const auto ring = ring::build_ring(fp);
  baseline::OringOptions opt;
  opt.max_wavelengths = 3;
  const auto r = baseline::synthesize_oring(fp, ring, opt);
  EXPECT_EQ(static_cast<int>(r.design.mapping.routes.size()), 6);
  EXPECT_GT(r.metrics.total_power_w, 0.0);
}

}  // namespace
}  // namespace xring
