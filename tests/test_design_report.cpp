#include <gtest/gtest.h>

#include "report/design_report.hpp"
#include "xring/synthesizer.hpp"

namespace xring::report {
namespace {

TEST(DesignReport, ContainsEverySection) {
  const auto fp = netlist::Floorplan::standard(8);
  Synthesizer synth(fp);
  const SynthesisResult r = synth.run();
  const std::string rep = design_report(r.design, r.metrics);
  for (const char* section :
       {"Step 1: ring", "Step 2: shortcuts", "Step 3: waveguides",
        "Wavelength occupancy", "Step 4: PDN", "Evaluation",
        "Per-signal metrics"}) {
    EXPECT_NE(rep.find(section), std::string::npos) << section;
  }
  // Every node name appears; the tree PDN is reported crossing-free.
  EXPECT_NE(rep.find("n7"), std::string::npos);
  EXPECT_NE(rep.find("crossing-free"), std::string::npos);
  // One row per signal in the metric table.
  EXPECT_NE(rep.find("n0->n1"), std::string::npos);
  EXPECT_NE(rep.find("n7->n6"), std::string::npos);
}

TEST(DesignReport, CombPdnReported) {
  const auto fp = netlist::Floorplan::standard(8);
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.pdn_style = SynthesisOptions::PdnStyle::kComb;
  opt.openings.enable = false;
  const SynthesisResult r = synth.run(opt);
  const std::string rep = design_report(r.design, r.metrics);
  EXPECT_NE(rep.find("comb PDN with"), std::string::npos);
}

TEST(DesignReport, NoPdnReported) {
  const auto fp = netlist::Floorplan::standard(8);
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.build_pdn = false;
  const SynthesisResult r = synth.run(opt);
  const std::string rep = design_report(r.design, r.metrics);
  EXPECT_NE(rep.find("(not synthesized)"), std::string::npos);
}

TEST(DesignReport, OccupancyChartShapes) {
  const auto fp = netlist::Floorplan::standard(8);
  Synthesizer synth(fp);
  const SynthesisResult r = synth.run();
  const std::string rep = design_report(r.design, r.metrics);
  // Rows are as wide as the ring has hops and contain the opening mark.
  const auto pos = rep.find("  l0 ");
  ASSERT_NE(pos, std::string::npos);
  const auto eol = rep.find('\n', pos);
  std::string row = rep.substr(pos + 5, eol - pos - 5);
  row.erase(0, row.find_first_not_of(' '));
  EXPECT_EQ(static_cast<int>(row.size()), r.design.ring.tour.size());
  EXPECT_NE(row.find('|'), std::string::npos);
}

}  // namespace
}  // namespace xring::report
