#include <gtest/gtest.h>

#include "netlist/traffic.hpp"

namespace xring::netlist {
namespace {

TEST(Floorplan, GridPlacesRowMajor) {
  const Floorplan fp = Floorplan::grid(2, 3, 100);
  ASSERT_EQ(fp.size(), 6);
  EXPECT_EQ(fp.position(0), (geom::Point{0, 0}));
  EXPECT_EQ(fp.position(2), (geom::Point{200, 0}));
  EXPECT_EQ(fp.position(3), (geom::Point{0, 100}));
  EXPECT_EQ(fp.position(5), (geom::Point{200, 100}));
}

TEST(Floorplan, GridDistances) {
  const Floorplan fp = Floorplan::grid(2, 3, 100);
  EXPECT_EQ(fp.distance(0, 5), 300);
  EXPECT_EQ(fp.distance(0, 0), 0);
  EXPECT_EQ(fp.distance(1, 4), 100);
}

TEST(Floorplan, GridRejectsEmpty) {
  EXPECT_THROW(Floorplan::grid(0, 3, 100), std::invalid_argument);
  EXPECT_THROW(Floorplan::grid(3, -1, 100), std::invalid_argument);
}

TEST(Floorplan, RingLayoutWalksBoundaryClockwise) {
  const Floorplan fp = Floorplan::ring_layout(3, 3, 10);
  ASSERT_EQ(fp.size(), 8);
  // Consecutive boundary nodes are one pitch apart; the loop closes.
  for (int i = 0; i < fp.size(); ++i) {
    EXPECT_EQ(fp.distance(i, (i + 1) % fp.size()), 10) << "at node " << i;
  }
}

TEST(Floorplan, StandardSizes) {
  EXPECT_EQ(Floorplan::standard(8).size(), 8);
  EXPECT_EQ(Floorplan::standard(16).size(), 16);
  EXPECT_EQ(Floorplan::standard(32).size(), 32);
  EXPECT_THROW(Floorplan::standard(12), std::invalid_argument);
}

TEST(Floorplan, NodeNamesAssigned) {
  const Floorplan fp = Floorplan::standard(8);
  EXPECT_EQ(fp.node(0).name, "n0");
  EXPECT_EQ(fp.node(7).name, "n7");
  EXPECT_EQ(fp.node(3).id, 3);
}

TEST(Traffic, AllToAllCount) {
  for (const int n : {3, 8, 16}) {
    const Traffic t = Traffic::all_to_all(n);
    EXPECT_EQ(t.size(), n * (n - 1));
  }
}

TEST(Traffic, AllToAllCoversEveryOrderedPairOnce) {
  const int n = 6;
  const Traffic t = Traffic::all_to_all(n);
  std::vector<std::vector<int>> seen(n, std::vector<int>(n, 0));
  for (const Signal& s : t.signals()) {
    EXPECT_NE(s.src, s.dst);
    seen[s.src][s.dst]++;
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(seen[i][j], i == j ? 0 : 1);
    }
  }
}

TEST(Traffic, IdsAreDense) {
  const Traffic t = Traffic::all_to_all(5);
  for (int i = 0; i < t.size(); ++i) EXPECT_EQ(t.signal(i).id, i);
}

TEST(Traffic, RejectsSelfLoop) {
  EXPECT_THROW(Traffic({Signal{0, 2, 2}}), std::invalid_argument);
}

}  // namespace
}  // namespace xring::netlist
