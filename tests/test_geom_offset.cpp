#include <gtest/gtest.h>

#include "geom/offset.hpp"
#include "ring/builder.hpp"

namespace xring::geom {
namespace {

Polyline rectangle(Coord w, Coord h) {
  Polyline p;
  p.append(Segment{{0, 0}, {w, 0}});
  p.append(Segment{{w, 0}, {w, h}});
  p.append(Segment{{w, h}, {0, h}});
  p.append(Segment{{0, h}, {0, 0}});
  return p;
}

Polyline l_shape() {
  // An L: outer 10x10 with a 5x5 notch at the top-right.
  Polyline p;
  p.append(Segment{{0, 0}, {10, 0}});
  p.append(Segment{{10, 0}, {10, 5}});
  p.append(Segment{{10, 5}, {5, 5}});
  p.append(Segment{{5, 5}, {5, 10}});
  p.append(Segment{{5, 10}, {0, 10}});
  p.append(Segment{{0, 10}, {0, 0}});
  return p;
}

TEST(ClosedVertices, AcceptsClosedRejectsOpen) {
  EXPECT_TRUE(closed_vertices(rectangle(4, 3)).has_value());
  Polyline open;
  open.append(Segment{{0, 0}, {4, 0}});
  open.append(Segment{{4, 0}, {4, 3}});
  EXPECT_FALSE(closed_vertices(open).has_value());
}

TEST(SignedArea, OrientationAndMagnitude) {
  const auto rect = *closed_vertices(rectangle(4, 3));
  EXPECT_EQ(signed_area2(rect), 24);  // CCW, 2 * 12
  // Reversed rectangle is CW.
  std::vector<Point> rev(rect.rbegin(), rect.rend());
  EXPECT_EQ(signed_area2(rev), -24);
  const auto l = *closed_vertices(l_shape());
  EXPECT_EQ(std::abs(signed_area2(l)), 2 * (100 - 25));
}

TEST(Offset, RectangleOutwardAddsEightD) {
  const Polyline rect = rectangle(10, 6);
  for (const Coord d : {1, 2, 5}) {
    const Polyline out = offset_closed(rect, d, /*inward=*/false);
    EXPECT_EQ(out.length(), rect.length() + 8 * d) << "d=" << d;
    EXPECT_EQ(out.self_crossings(), 0);
    EXPECT_EQ(out.crossings_with(rect), 0);
  }
}

TEST(Offset, RectangleInwardRemovesEightD) {
  const Polyline rect = rectangle(10, 6);
  const Polyline in = offset_closed(rect, 2, /*inward=*/true);
  EXPECT_EQ(in.length(), rect.length() - 8 * 2);
}

TEST(Offset, NonConvexStillAddsExactlyEightD) {
  // The theorem: convex corners add 2d, reflex corners subtract 2d, and a
  // simple closed rectilinear curve always has (convex - reflex) = 4.
  const Polyline l = l_shape();
  const Polyline out = offset_closed(l, 1, false);
  EXPECT_EQ(out.length(), l.length() + 8);
  EXPECT_EQ(out.self_crossings(), 0);
}

TEST(Offset, OrientationInsensitive) {
  // A clockwise rectangle offsets outward identically.
  Polyline cw;
  cw.append(Segment{{0, 0}, {0, 6}});
  cw.append(Segment{{0, 6}, {10, 6}});
  cw.append(Segment{{10, 6}, {10, 0}});
  cw.append(Segment{{10, 0}, {0, 0}});
  const Polyline out = offset_closed(cw, 3, false);
  EXPECT_EQ(out.length(), cw.length() + 24);
}

TEST(Offset, MergesCollinearRuns) {
  // A rectangle with a redundant vertex on one edge.
  Polyline p;
  p.append(Segment{{0, 0}, {4, 0}});
  p.append(Segment{{4, 0}, {10, 0}});
  p.append(Segment{{10, 0}, {10, 6}});
  p.append(Segment{{10, 6}, {0, 6}});
  p.append(Segment{{0, 6}, {0, 0}});
  const Polyline out = offset_closed(p, 1, false);
  EXPECT_EQ(out.length(), p.length() + 8);
}

TEST(Offset, RejectsOpenAndDegenerate) {
  Polyline open;
  open.append(Segment{{0, 0}, {4, 0}});
  EXPECT_THROW(offset_closed(open, 1, false), std::invalid_argument);
}

TEST(Offset, SynthesizedRingsObeyTheScaleModel) {
  // The analysis engine models ring waveguide w as scale (L + 8*d*w)/L;
  // check the exact offset construction agrees on real synthesized rings.
  for (const int n : {8, 16}) {
    const auto fp = netlist::Floorplan::standard(n);
    const auto ring = ring::build_ring(fp).geometry;
    const Coord d = 130;
    try {
      const Polyline outer = offset_closed(ring.polyline, d, false);
      EXPECT_EQ(outer.length(), ring.polyline.length() + 8 * d) << n;
      EXPECT_EQ(outer.crossings_with(ring.polyline), 0);
    } catch (const std::invalid_argument&) {
      // Rings with collinear overlaps are not simple curves; the analytic
      // scale model is the documented fallback there.
      SUCCEED();
    }
  }
}

}  // namespace
}  // namespace xring::geom
