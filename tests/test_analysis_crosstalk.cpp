#include <gtest/gtest.h>

#include <cmath>

#include "analysis/evaluate.hpp"
#include "baseline/oring.hpp"
#include "baseline/ornoc.hpp"
#include "xring/synthesizer.hpp"

namespace xring::analysis {
namespace {

TEST(Crosstalk, XRingTreePdnProducesNoLaserLeak) {
  const auto fp = netlist::Floorplan::standard(16);
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.mapping.max_wavelengths = 16;
  const auto r = synth.run(opt);
  // No comb PDN, wavelength-disciplined shortcuts: at most a handful of
  // signals may see crosstalk; the paper's claim is >= 98 % clean.
  const int total = r.design.traffic.size();
  EXPECT_LE(r.metrics.noisy_signals, total / 50);
}

TEST(Crosstalk, CombPdnLeaksIntoManyReceivers) {
  const auto fp = netlist::Floorplan::standard(16);
  const auto ring = ring::build_ring(fp);
  baseline::OringOptions opt;
  opt.max_wavelengths = 16;
  const auto r = baseline::synthesize_oring(fp, ring, opt);
  // The paper reports 87 % of ORing signals suffering first-order noise.
  EXPECT_GT(r.metrics.noisy_signals, r.design.traffic.size() / 2);
  EXPECT_LT(r.metrics.snr_worst_db, kNoNoiseSnr);
}

TEST(Crosstalk, NoisePowersAreNonNegativeAndFinite) {
  const auto fp = netlist::Floorplan::standard(16);
  const auto ring = ring::build_ring(fp);
  baseline::OrnocOptions opt;
  opt.max_wavelengths = 16;
  const auto r = baseline::synthesize_ornoc(fp, ring, opt);
  for (const SignalReport& s : r.metrics.signals) {
    EXPECT_GE(s.noise_mw, 0.0);
    EXPECT_TRUE(std::isfinite(s.noise_mw));
    EXPECT_GT(s.signal_mw, 0.0);
    if (s.noise_mw > 0.0) {
      // First-order noise is always far below the signal (SNR positive):
      // leak coefficients are -25 dB and below.
      EXPECT_GT(s.snr_db, 0.0);
    }
  }
}

TEST(Crosstalk, NoiseScalesWithCrossingCoefficient) {
  const auto fp = netlist::Floorplan::standard(16);
  const auto ring = ring::build_ring(fp);
  baseline::OringOptions weak;
  weak.max_wavelengths = 16;
  weak.params.crosstalk.crossing_db = -50.0;
  baseline::OringOptions strong = weak;
  strong.params.crosstalk.crossing_db = -30.0;
  const auto r_weak = baseline::synthesize_oring(fp, ring, weak);
  const auto r_strong = baseline::synthesize_oring(fp, ring, strong);
  EXPECT_GT(r_weak.metrics.snr_worst_db, r_strong.metrics.snr_worst_db);
}

TEST(Crosstalk, SnrIsSignalOverNoiseInDb) {
  const auto fp = netlist::Floorplan::standard(16);
  const auto ring = ring::build_ring(fp);
  baseline::OringOptions opt;
  opt.max_wavelengths = 16;
  const auto r = baseline::synthesize_oring(fp, ring, opt);
  for (const SignalReport& s : r.metrics.signals) {
    if (s.noise_mw > opt.params.crosstalk.noise_floor_mw) {
      EXPECT_NEAR(s.snr_db, 10.0 * std::log10(s.signal_mw / s.noise_mw), 1e-9);
    } else {
      EXPECT_EQ(s.snr_db, kNoNoiseSnr);
    }
  }
}

TEST(Crosstalk, WorstSnrIsTheMinimumOverNoisySignals) {
  const auto fp = netlist::Floorplan::standard(8);
  const auto ring = ring::build_ring(fp);
  baseline::OrnocOptions opt;
  opt.max_wavelengths = 8;
  const auto r = baseline::synthesize_ornoc(fp, ring, opt);
  double min_snr = kNoNoiseSnr;
  int noisy = 0;
  for (const SignalReport& s : r.metrics.signals) {
    if (s.snr_db < kNoNoiseSnr) {
      ++noisy;
      min_snr = std::min(min_snr, s.snr_db);
    }
  }
  EXPECT_EQ(noisy, r.metrics.noisy_signals);
  EXPECT_DOUBLE_EQ(min_snr, r.metrics.snr_worst_db);
}

TEST(Crosstalk, OpeningsBlockNoisePropagation) {
  // Same router with and without openings, keeping the comb PDN: openings
  // terminate travelling noise, so they can only reduce the per-receiver
  // noise power (all else equal).
  const auto fp = netlist::Floorplan::standard(8);
  const auto traffic = netlist::Traffic::all_to_all(8);
  const auto ring = ring::build_ring(fp);
  const auto params = phys::Parameters::oring();

  auto build = [&](bool with_openings) {
    RouterDesign d;
    d.floorplan = &fp;
    d.traffic = traffic;
    d.ring = ring.geometry;
    d.params = params;
    mapping::MappingOptions mo;
    mo.max_wavelengths = 8;
    mo.use_shortcuts = false;
    d.mapping = mapping::assign_wavelengths(d.ring.tour, d.traffic, {}, mo);
    if (with_openings) {
      mapping::create_openings(d.ring.tour, d.traffic, d.mapping, mo);
    }
    d.pdn = pdn::comb_pdn(d.ring.tour, d.mapping, d.params);
    d.has_pdn = true;
    return evaluate(d);
  };

  const RouterMetrics open = build(true);
  const RouterMetrics closed = build(false);
  double open_total = 0, closed_total = 0;
  for (const auto& s : open.signals) open_total += s.noise_mw;
  for (const auto& s : closed.signals) closed_total += s.noise_mw;
  EXPECT_LE(open.noisy_signals, closed.noisy_signals + 8);
  EXPECT_GT(closed_total, 0.0);
}

}  // namespace
}  // namespace xring::analysis
