// Geometric consistency of the tree PDN's recorded channel waveguides
// (TreeEdge list) against the analytic model.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "pdn/pdn.hpp"
#include "xring/synthesizer.hpp"

namespace xring::pdn {
namespace {

SynthesisResult make(int n) {
  static std::vector<std::unique_ptr<netlist::Floorplan>> keep;
  keep.push_back(
      std::make_unique<netlist::Floorplan>(netlist::Floorplan::standard(n)));
  Synthesizer synth(*keep.back());
  SynthesisOptions opt;
  opt.mapping.max_wavelengths = n;
  return synth.run(opt);
}

TEST(PdnGeometry, EdgeLengthsSumToTotal) {
  const auto r = make(16);
  double sum_um = 0;
  for (const TreeEdge& e : r.design.pdn.tree_edges) {
    EXPECT_LE(e.from_arc_um, e.to_arc_um);
    sum_um += e.to_arc_um - e.from_arc_um;
  }
  EXPECT_NEAR(sum_um / 1000.0, r.design.pdn.total_length_mm, 1e-6);
}

TEST(PdnGeometry, EdgesStayWithinTheRingLength) {
  const auto r = make(16);
  const double L = static_cast<double>(r.design.ring.tour.total_length());
  for (const TreeEdge& e : r.design.pdn.tree_edges) {
    EXPECT_GE(e.from_arc_um, 0.0);
    EXPECT_LE(e.to_arc_um, L + 1e-9);
    EXPECT_GE(e.waveguide, 0);
    EXPECT_LT(e.waveguide,
              static_cast<int>(r.design.mapping.waveguides.size()));
  }
}

TEST(PdnGeometry, LevelsFormAFoldedTree) {
  // Per waveguide: level-0 edges join senders; each level has at most half
  // as many edges as the previous (odd points promote unpaired).
  const auto r = make(16);
  for (std::size_t w = 0; w < r.design.mapping.waveguides.size(); ++w) {
    std::map<int, int> per_level;
    for (const TreeEdge& e : r.design.pdn.tree_edges) {
      if (e.waveguide == static_cast<int>(w)) per_level[e.level]++;
    }
    if (per_level.empty()) continue;
    int prev = -1;
    for (const auto& [level, count] : per_level) {
      if (prev > 0) {
        EXPECT_LE(count, (prev + 1) / 2) << "waveguide " << w;
      }
      prev = count;
    }
    // The fold terminates in a single top join.
    EXPECT_EQ(per_level.rbegin()->second, 1) << "waveguide " << w;
  }
}

TEST(PdnGeometry, SenderCountSetsLeafEdges) {
  // Level-0 edge count per waveguide == floor(#senders with feeds / 2).
  const auto r = make(8);
  for (std::size_t w = 0; w < r.design.mapping.waveguides.size(); ++w) {
    int senders = 0;
    for (const double f : r.design.pdn.ring_feed_db[w]) {
      if (f >= 0) ++senders;
    }
    int level0 = 0;
    for (const TreeEdge& e : r.design.pdn.tree_edges) {
      if (e.waveguide == static_cast<int>(w) && e.level == 0) ++level0;
    }
    EXPECT_EQ(level0, senders / 2) << "waveguide " << w;
  }
}

}  // namespace
}  // namespace xring::pdn
