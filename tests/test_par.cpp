// The parallel execution substrate: thread-pool mechanics (work stealing,
// exception propagation, nesting, degenerate ranges) and — the property the
// whole design hangs on — bit-identical results from the parallel sweep and
// the speculative MILP search at 1, 2, and 8 threads.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "milp/branch_and_bound.hpp"
#include "obs/obs.hpp"
#include "par/pool.hpp"
#include "xring/sweep.hpp"

namespace xring {
namespace {

// --- Pool mechanics ------------------------------------------------------

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  par::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  par::parallel_for(pool, 0, 1000, [&](long i) { hits[i].fetch_add(1); }, 7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroAndNegativeRangesAreNoOps) {
  par::ThreadPool pool(4);
  int calls = 0;
  par::parallel_for(pool, 0, 0, [&](long) { ++calls; });
  par::parallel_for(pool, 5, 5, [&](long) { ++calls; });
  par::parallel_for(pool, 10, 3, [&](long) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SingleJobPoolRunsInlineInOrder) {
  par::ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 0);
  std::vector<long> order;
  par::parallel_for(pool, 0, 16, [&](long i) { order.push_back(i); }, 3);
  ASSERT_EQ(order.size(), 16u);
  for (long i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, ExceptionPropagatesAndPoolSurvives) {
  par::ThreadPool pool(4);
  auto boom = [&] {
    par::parallel_for(pool, 0, 100, [](long i) {
      if (i == 37) throw std::runtime_error("chunk failure");
    });
  };
  EXPECT_THROW(boom(), std::runtime_error);
  // The pool must stay serviceable after a failed loop.
  std::atomic<int> sum{0};
  par::parallel_for(pool, 0, 10, [&](long i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelFor, NestedLoopsComplete) {
  par::ThreadPool pool(4);
  std::atomic<long> total{0};
  par::parallel_for(pool, 0, 8, [&](long) {
    par::parallel_for(pool, 0, 64, [&](long) { total.fetch_add(1); }, 8);
  });
  EXPECT_EQ(total.load(), 8 * 64);
}

TEST(ParallelReduce, ChunkOrderIsIndependentOfThreadCount) {
  // String concatenation is order-sensitive, so equality across pool sizes
  // proves the combine order is fixed by the chunking, not the scheduling.
  auto run = [](int jobs) {
    par::ThreadPool pool(jobs);
    return par::parallel_reduce(
        pool, 0, 26, std::string(),
        [](long i, std::string& acc) { acc += static_cast<char>('a' + i); },
        [](std::string& into, std::string& chunk) { into += chunk; }, 3);
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial, "abcdefghijklmnopqrstuvwxyz");
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(TaskGroup, WaitResolvesAllTasksAndRethrows) {
  par::ThreadPool pool(4);
  {
    par::TaskGroup group(pool);
    std::atomic<int> ran{0};
    for (int i = 0; i < 64; ++i) group.run([&] { ran.fetch_add(1); });
    group.wait();
    EXPECT_EQ(ran.load(), 64);
  }
  {
    par::TaskGroup group(pool);
    group.run([] { throw std::runtime_error("task failure"); });
    EXPECT_THROW(group.wait(), std::runtime_error);
  }
}

TEST(Jobs, ResolutionOrderAndGlobalPoolResize) {
  par::set_jobs(3);
  EXPECT_EQ(par::effective_jobs(), 3);
  EXPECT_EQ(par::global_pool().jobs(), 3);
  par::set_jobs(0);  // back to env/hardware sizing
  EXPECT_GE(par::effective_jobs(), 1);
  EXPECT_GE(par::hardware_jobs(), 1);
  EXPECT_EQ(par::resolve_jobs(5), 5);
}

// --- Determinism regressions across thread counts ------------------------

/// Runs `fn` under a global pool of each thread count and checks all
/// results identical to the 1-thread (serial) run via `eq`.
template <class Fn, class Eq>
void expect_identical_at_1_2_8(Fn fn, Eq eq) {
  par::set_jobs(1);
  const auto serial = fn();
  par::set_jobs(2);
  const auto two = fn();
  par::set_jobs(8);
  const auto eight = fn();
  par::set_jobs(0);
  eq(serial, two);
  eq(serial, eight);
}

TEST(Determinism, SweepIdenticalAt128Threads) {
  const auto fp = netlist::Floorplan::standard(8);
  const Synthesizer synth(fp);
  SynthesisOptions base;
  auto run = [&] { return sweep_xring(synth, base, SweepGoal::kMinPower, 2, 6); };
  expect_identical_at_1_2_8(run, [](const SweepResult& a, const SweepResult& b) {
    EXPECT_EQ(a.best_wl, b.best_wl);
    EXPECT_EQ(a.settings_tried, b.settings_tried);
    // Bit-identical metrics, not just close: the ordered reduction replays
    // the serial accumulation exactly.
    EXPECT_EQ(a.result.metrics.il_star_worst_db, b.result.metrics.il_star_worst_db);
    EXPECT_EQ(a.result.metrics.il_worst_db, b.result.metrics.il_worst_db);
    EXPECT_EQ(a.result.metrics.total_power_w, b.result.metrics.total_power_w);
    EXPECT_EQ(a.result.metrics.snr_worst_db, b.result.metrics.snr_worst_db);
    EXPECT_EQ(a.result.metrics.wavelengths, b.result.metrics.wavelengths);
    ASSERT_EQ(a.result.metrics.signals.size(), b.result.metrics.signals.size());
    for (std::size_t i = 0; i < a.result.metrics.signals.size(); ++i) {
      EXPECT_EQ(a.result.metrics.signals[i].il_db, b.result.metrics.signals[i].il_db);
      EXPECT_EQ(a.result.metrics.signals[i].noise_mw,
                b.result.metrics.signals[i].noise_mw);
    }
    EXPECT_GT(b.wall_seconds, 0.0);
    EXPECT_GE(b.seconds, 0.0);
  });
}

TEST(Determinism, MilpSearchIdenticalAt128Threads) {
  // Cycle cover with a lazy handler bolted on: exercises branching, lazy
  // rounds (snapshot invalidation), and incumbent pruning.
  const int n = 13;
  milp::Model m;
  std::vector<int> x;
  for (int i = 0; i < n; ++i) x.push_back(m.add_binary(1.0));
  for (int i = 0; i < n; ++i) {
    m.add_constraint({{x[i], 1.0}, {x[(i + 1) % n], 1.0}},
                     milp::Sense::kGe, 1.0);
  }
  auto run = [&] {
    milp::BnbOptions opt;
    opt.lazy_handler = [&](const std::vector<double>& v) {
      // Forbid taking the first three nodes together.
      std::vector<milp::Constraint> cuts;
      if (v[x[0]] > 0.5 && v[x[1]] > 0.5 && v[x[2]] > 0.5) {
        cuts.push_back(milp::Constraint{
            {{x[0], 1.0}, {x[1], 1.0}, {x[2], 1.0}}, milp::Sense::kLe, 2.0});
      }
      return cuts;
    };
    return milp::solve(m, opt);
  };
  expect_identical_at_1_2_8(run, [](const milp::MipResult& a,
                                    const milp::MipResult& b) {
    ASSERT_EQ(a.status, b.status);
    EXPECT_EQ(a.objective, b.objective);  // exact, not approximate
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.lazy_constraints_added, b.lazy_constraints_added);
    ASSERT_EQ(a.x.size(), b.x.size());
    for (std::size_t i = 0; i < a.x.size(); ++i) EXPECT_EQ(a.x[i], b.x[i]);
  });
}

TEST(Determinism, LpCountersReplayTheSerialSearch) {
  // The bench regression gate compares lp.solves/lp.pivots exactly, so the
  // speculative search must book only the solves the serial search performs
  // (discarded speculation stays off the books).
  milp::Model m;
  m.set_maximize(true);
  const int a = m.add_binary(10), b = m.add_binary(13), c = m.add_binary(7);
  m.add_constraint({{a, 3.0}, {b, 4.0}, {c, 2.0}}, milp::Sense::kLe, 6.0);
  auto count = [&](int threads) {
    milp::BnbOptions opt;
    opt.threads = threads;
    obs::set_enabled(true);
    obs::registry().reset();
    (void)milp::solve(m, opt);
    const auto flat = obs::registry().flatten();
    obs::set_enabled(false);
    return std::make_pair(flat.at("lp.solves"), flat.at("lp.pivots"));
  };
  const auto serial = count(1);
  const auto spec = count(8);
  EXPECT_EQ(serial.first, spec.first);
  EXPECT_EQ(serial.second, spec.second);
}

TEST(Determinism, BnbThreadsOptionOverridesGlobalPool) {
  // An explicit BnbOptions::threads engages speculation even when the
  // global pool is serial — and still returns the serial answer.
  par::set_jobs(1);
  milp::Model m;
  m.set_maximize(true);
  const int a = m.add_binary(10), b = m.add_binary(13), c = m.add_binary(7);
  m.add_constraint({{a, 3.0}, {b, 4.0}, {c, 2.0}}, milp::Sense::kLe, 6.0);
  milp::BnbOptions serial_opt;
  serial_opt.threads = 1;
  const milp::MipResult serial = milp::solve(m, serial_opt);
  milp::BnbOptions spec_opt;
  spec_opt.threads = 4;
  const milp::MipResult spec = milp::solve(m, spec_opt);
  par::set_jobs(0);
  ASSERT_EQ(serial.status, milp::MipStatus::kOptimal);
  ASSERT_EQ(spec.status, milp::MipStatus::kOptimal);
  EXPECT_EQ(serial.objective, spec.objective);
  EXPECT_EQ(serial.nodes, spec.nodes);
  ASSERT_EQ(serial.x.size(), spec.x.size());
  for (std::size_t i = 0; i < serial.x.size(); ++i) {
    EXPECT_EQ(serial.x[i], spec.x[i]);
  }
}

TEST(Determinism, WarmStartCountersIdenticalAt128Threads) {
  // The dual-simplex warm starts ride the node's shared basis snapshot, so
  // a speculated child solve is bit-identical to an inline one — and the
  // milp.warm_pivots / milp.cold_solves bookkeeping (done at consumption
  // time) must replay the serial search at every thread count. The model
  // forces a fractional root and several levels of branching.
  milp::Model m;
  m.set_maximize(true);
  std::vector<int> x;
  for (int i = 0; i < 8; ++i) x.push_back(m.add_binary(3.0 + i));
  std::vector<std::pair<int, double>> knap;
  for (int i = 0; i < 8; ++i) knap.emplace_back(x[i], 2.0 + (i % 3));
  m.add_constraint(knap, milp::Sense::kLe, 11.0);
  m.add_constraint({{x[0], 1.0}, {x[7], 1.0}}, milp::Sense::kLe, 1.0);

  auto run = [&] {
    obs::set_enabled(true);
    obs::registry().reset();
    const milp::MipResult r = milp::solve(m, milp::BnbOptions{});
    auto flat = obs::registry().flatten();
    obs::set_enabled(false);
    return std::make_pair(r, flat);
  };
  expect_identical_at_1_2_8(run, [](const auto& a, const auto& b) {
    ASSERT_EQ(a.first.status, b.first.status);
    EXPECT_EQ(a.first.objective, b.first.objective);
    EXPECT_EQ(a.first.nodes, b.first.nodes);
    for (const char* key :
         {"milp.nodes", "milp.warm_pivots", "milp.cold_solves", "lp.solves",
          "lp.pivots", "milp.incumbents", "milp.incumbent.last"}) {
      const auto ia = a.second.find(key), ib = b.second.find(key);
      ASSERT_EQ(ia != a.second.end(), ib != b.second.end()) << key;
      if (ia != a.second.end()) EXPECT_EQ(ia->second, ib->second) << key;
    }
    // Warm starts must actually fire on a multi-node search.
    const auto wp = b.second.find("milp.warm_pivots");
    ASSERT_NE(wp, b.second.end());
    EXPECT_GT(wp->second, 0.0);
  });
}

}  // namespace
}  // namespace xring
