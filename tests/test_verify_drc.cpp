#include <gtest/gtest.h>

#include "baseline/oring.hpp"
#include "verify/drc.hpp"
#include "xring/synthesizer.hpp"

namespace xring::verify {
namespace {

SynthesisResult synthesize(int n) {
  static std::vector<std::unique_ptr<netlist::Floorplan>> keep;
  keep.push_back(
      std::make_unique<netlist::Floorplan>(netlist::Floorplan::standard(n)));
  Synthesizer synth(*keep.back());
  SynthesisOptions opt;
  opt.mapping.max_wavelengths = n;
  return synth.run(opt);
}

DrcOptions options_for(int n) {
  DrcOptions opt;
  opt.max_wavelengths = n;
  return opt;
}

TEST(Drc, SynthesizedDesignsAreClean) {
  for (const int n : {8, 16, 32}) {
    const auto r = synthesize(n);
    const auto violations = check(r.design, options_for(n));
    EXPECT_TRUE(violations.empty())
        << n << "-node design:\n" << report(violations);
  }
}

TEST(Drc, BaselineWithoutOpeningsIsCleanWhenNotRequired) {
  const auto fp = netlist::Floorplan::standard(16);
  const auto ring = ring::build_ring(fp);
  baseline::OringOptions oo;
  oo.max_wavelengths = 16;
  const auto r = baseline::synthesize_oring(fp, ring, oo);
  DrcOptions opt = options_for(16);
  opt.require_openings = false;  // ORing has none by design
  EXPECT_TRUE(check(r.design, opt).empty());
  // With the requirement on, every waveguide is flagged.
  opt.require_openings = true;
  const auto violations = check(r.design, opt);
  int missing = 0;
  for (const auto& v : violations) {
    if (v.rule == Violation::Rule::kOpeningMissing) ++missing;
  }
  EXPECT_EQ(missing, static_cast<int>(r.design.mapping.waveguides.size()));
}

TEST(Drc, DetectsUnroutedSignal) {
  auto r = synthesize(8);
  r.design.mapping.routes[3] = mapping::SignalRoute{};
  const auto violations = check(r.design, options_for(8));
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().rule, Violation::Rule::kUnroutedSignal);
}

TEST(Drc, DetectsWavelengthCapViolation) {
  auto r = synthesize(8);
  // Push one ring signal's wavelength beyond the cap.
  for (auto& route : r.design.mapping.routes) {
    if (route.kind == mapping::RouteKind::kRingCw) {
      route.wavelength = 99;
      break;
    }
  }
  bool found = false;
  for (const auto& v : check(r.design, options_for(8))) {
    found |= v.rule == Violation::Rule::kWavelengthCap;
  }
  EXPECT_TRUE(found);
}

TEST(Drc, DetectsArcOverlap) {
  auto r = synthesize(8);
  // Force two same-waveguide signals onto one wavelength. With all-to-all
  // traffic some pair on the same waveguide must overlap once they share λ0.
  bool corrupted = false;
  for (auto& wg : r.design.mapping.waveguides) {
    if (wg.signals.size() < 2) continue;
    for (const auto id : wg.signals) {
      r.design.mapping.routes[id].wavelength = 0;
    }
    corrupted = true;
    break;
  }
  ASSERT_TRUE(corrupted);
  bool found = false;
  for (const auto& v : check(r.design, options_for(8))) {
    found |= v.rule == Violation::Rule::kArcOverlap;
  }
  EXPECT_TRUE(found);
}

TEST(Drc, DetectsBlockedOpening) {
  auto r = synthesize(16);
  // Move a waveguide's opening onto a busy node.
  for (auto& wg : r.design.mapping.waveguides) {
    if (wg.signals.empty()) continue;
    const auto& sig = r.design.traffic.signal(wg.signals.front());
    const auto interior = mapping::interior_nodes(r.design.ring.tour, sig.src,
                                                  sig.dst, wg.dir);
    if (interior.empty()) continue;
    wg.opening = interior.front();
    break;
  }
  bool found = false;
  for (const auto& v : check(r.design, options_for(16))) {
    found |= v.rule == Violation::Rule::kOpeningBlocked;
  }
  EXPECT_TRUE(found);
}

TEST(Drc, DetectsShortcutNodeCapViolation) {
  auto r = synthesize(16);
  ASSERT_GE(r.design.shortcuts.shortcuts.size(), 2u);
  // Pretend two shortcuts share a node.
  r.design.shortcuts.shortcuts[1].a = r.design.shortcuts.shortcuts[0].a;
  bool found = false;
  for (const auto& v : check(r.design, options_for(16))) {
    found |= v.rule == Violation::Rule::kShortcutNodeCap;
  }
  EXPECT_TRUE(found);
}

TEST(Drc, DetectsCseWavelengthClash) {
  // Build the Fig. 7-style crossing pair, then force both direct signals
  // onto the same wavelength.
  const auto fp = netlist::Floorplan::ring_layout(3, 3, 1000);
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.mapping.max_wavelengths = 8;
  auto r = synth.run(opt);
  bool has_crossed = false;
  for (const auto& s : r.design.shortcuts.shortcuts) {
    has_crossed |= s.crossing_partner >= 0;
  }
  ASSERT_TRUE(has_crossed);
  for (auto& route : r.design.mapping.routes) {
    if (route.kind == mapping::RouteKind::kShortcut) route.wavelength = 0;
  }
  bool found = false;
  for (const auto& v : check(r.design, options_for(8))) {
    found |= v.rule == Violation::Rule::kCseWavelengthClash;
  }
  EXPECT_TRUE(found);
}

TEST(Drc, DetectsMissingPdnFeed) {
  auto r = synthesize(8);
  r.design.pdn.ring_feed_db[0].assign(8, -1.0);
  bool found = false;
  for (const auto& v : check(r.design, options_for(8))) {
    found |= v.rule == Violation::Rule::kPdnMissingFeed;
  }
  EXPECT_TRUE(found);
}

TEST(Drc, ReportFormats) {
  EXPECT_EQ(report({}), "clean\n");
  const std::vector<Violation> v = {
      {Violation::Rule::kArcOverlap, "signals 1 and 2 overlap"}};
  EXPECT_EQ(report(v), "[arc-overlap] signals 1 and 2 overlap\n");
}

TEST(Drc, RuleNamesAreDistinct) {
  using R = Violation::Rule;
  const R rules[] = {R::kRingCrossing,   R::kChordCrossesRing,
                     R::kChordOverdegree, R::kUnroutedSignal,
                     R::kWavelengthCap,  R::kArcOverlap,
                     R::kOpeningMissing, R::kOpeningBlocked,
                     R::kShortcutNodeCap, R::kPdnMissingFeed,
                     R::kCseWavelengthClash};
  std::vector<std::string> names;
  for (const R r : rules) names.push_back(to_string(r));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace xring::verify
