// Differential testing of the loss engine: a slow, independently written
// reference calculator re-derives each ring signal's path length, device
// counts and total loss directly from the floorplan geometry and the raw
// mapping — no shared helpers with the production engine — and the two must
// agree bit-for-bit on the modelled quantities.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/evaluate.hpp"
#include "xring/synthesizer.hpp"

namespace xring::analysis {
namespace {

struct Reference {
  double path_mm = 0.0;
  int through_mrrs = 0;
  int crossings = 0;
  double total_db = 0.0;
};

/// Recomputes a ring-routed signal's figures from first principles.
Reference reference_ring_loss(const RouterDesign& d, SignalId id) {
  const auto& sig = d.traffic.signal(id);
  const mapping::SignalRoute& route = d.mapping.routes[id];
  const mapping::RingWaveguide& wg = d.mapping.waveguides[route.waveguide];
  const ring::Tour& tour = d.ring.tour;
  const netlist::Floorplan& fp = *d.floorplan;
  const phys::LossParams& lp = d.params.loss;

  Reference ref;

  // Walk node to node in the travel direction, summing Manhattan hop
  // lengths straight from the floorplan (not from the tour's caches).
  const int step = wg.dir == mapping::Direction::kCw ? 1 : -1;
  int pos = tour.position(sig.src);
  geom::Coord arc_um = 0;
  std::vector<netlist::NodeId> intermediate;
  while (tour.at(pos) != sig.dst) {
    const netlist::NodeId here = tour.at(pos);
    const netlist::NodeId next = tour.at(pos + step);
    arc_um += geom::manhattan(fp.position(here), fp.position(next));
    if (next != sig.dst) intermediate.push_back(next);
    pos += step;
  }

  // Nested-ring length scale, re-derived: offsetting a closed rectilinear
  // curve by s adds 8s, so waveguide w is (L + 8*s*w)/L times longer.
  const double spacing = d.params.geometry.ring_spacing_um(fp.size());
  const double base = static_cast<double>(tour.total_length());
  const double scale = (base + 8.0 * spacing * route.waveguide) / base;
  ref.path_mm = arc_um / 1000.0 * scale;

  // Devices at the intermediate nodes, counted from the raw signal lists.
  const int rx_rings = d.params.crosstalk.residue_filter ? 2 : 1;
  for (const netlist::NodeId v : intermediate) {
    for (const netlist::SignalId other : wg.signals) {
      if (d.traffic.signal(other).dst == v) ref.through_mrrs += rx_rings;
      if (d.traffic.signal(other).src == v) ref.through_mrrs += 1;
    }
    if (d.has_pdn) {
      ref.crossings += d.pdn.crossings_at[route.waveguide][v];
    }
  }

  // Bends from the realized hop geometry.
  int bends = 0;
  {
    const AnalysisContext ctx(d);
    const auto hops =
        mapping::occupied_hops(tour, sig.src, sig.dst, wg.dir);
    bends = ctx.bends_on_hops(hops);
    for (const int h : hops) {
      for (int g = 0; g < tour.size(); ++g) {
        ref.crossings += ctx.hop_crossings(h, g);
      }
    }
  }

  ref.total_db = ref.path_mm * lp.propagation_db_per_mm +
                 bends * lp.bend_db + ref.through_mrrs * lp.through_db +
                 ref.crossings * lp.crossing_db + lp.modulator_db +
                 lp.drop_db + lp.photodetector_db;
  if (d.has_pdn) {
    ref.total_db +=
        d.pdn.ring_feed_db[route.waveguide][sig.src] + lp.coupler_db;
  }
  return ref;
}

class ReferenceEngine : public ::testing::TestWithParam<int> {};

TEST_P(ReferenceEngine, RingSignalsAgree) {
  const int n = GetParam();
  const auto fp = netlist::Floorplan::standard(n);
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.mapping.max_wavelengths = n;
  const SynthesisResult r = synth.run(opt);
  const AnalysisContext ctx(r.design);

  int checked = 0;
  for (SignalId id = 0; id < r.design.traffic.size(); ++id) {
    const auto kind = r.design.mapping.routes[id].kind;
    if (kind != mapping::RouteKind::kRingCw &&
        kind != mapping::RouteKind::kRingCcw) {
      continue;
    }
    const LossBreakdown fast = signal_loss(ctx, id);
    const Reference slow = reference_ring_loss(r.design, id);
    EXPECT_NEAR(fast.path_mm, slow.path_mm, 1e-9) << "signal " << id;
    EXPECT_EQ(fast.through_mrrs, slow.through_mrrs) << "signal " << id;
    EXPECT_EQ(fast.crossings, slow.crossings) << "signal " << id;
    EXPECT_NEAR(fast.total_db(), slow.total_db, 1e-9) << "signal " << id;
    ++checked;
  }
  EXPECT_GT(checked, n);  // plenty of ring-routed signals exist
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReferenceEngine, ::testing::Values(8, 16, 32));

TEST(ReferenceEngine, AgreesWithoutResidueFilterToo) {
  const auto fp = netlist::Floorplan::standard(8);
  Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.params.crosstalk.residue_filter = false;
  const SynthesisResult r = synth.run(opt);
  const AnalysisContext ctx(r.design);
  for (SignalId id = 0; id < r.design.traffic.size(); ++id) {
    const auto kind = r.design.mapping.routes[id].kind;
    if (kind != mapping::RouteKind::kRingCw &&
        kind != mapping::RouteKind::kRingCcw) {
      continue;
    }
    EXPECT_NEAR(signal_loss(ctx, id).total_db(),
                reference_ring_loss(r.design, id).total_db, 1e-9);
  }
}

}  // namespace
}  // namespace xring::analysis
