#include <gtest/gtest.h>

#include "report/table.hpp"

namespace xring::report {
namespace {

TEST(Table, RendersAlignedAscii) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("+-------+-------+"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1);
  EXPECT_NE(t.to_string().find("| x | "), std::string::npos);
}

TEST(Table, RejectsOverlongRows) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_EQ(csv.find("name,note\n"), 0u);
}

TEST(Format, Num) {
  EXPECT_EQ(num(3.14159, 2), "3.14");
  EXPECT_EQ(num(3.0, 0), "3");
  EXPECT_EQ(num(-1.5, 1), "-1.5");
}

TEST(Format, SnrSentinel) {
  EXPECT_EQ(snr(29.13), "29.1");
  EXPECT_EQ(snr(1e9), "-");
}

}  // namespace
}  // namespace xring::report
