// Solver and pipeline telemetry: the MILP branch & bound, the LP simplex
// and the full Synthesizer must report their work into the obs registry,
// and the figures must agree with the results they return.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "milp/branch_and_bound.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "xring/synthesizer.hpp"

namespace xring {
namespace {

class ObsSolverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_ = obs::swap_registry(&reg_);
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::swap_registry(prev_);
  }

  obs::Registry reg_;
  obs::Registry* prev_ = nullptr;
};

/// A small knapsack-flavored minimization with a lazy no-good handler, so
/// the search explores several nodes, improves its incumbent at least once
/// and adds lazy cuts.
milp::Model cover_model() {
  // min 5a + 4b + 3c + 6d  s.t.  a+b >= 1, b+c >= 1, a+d >= 1.
  milp::Model m;
  const int a = m.add_binary(5), b = m.add_binary(4), c = m.add_binary(3),
            d = m.add_binary(6);
  m.add_constraint({{a, 1.0}, {b, 1.0}}, milp::Sense::kGe, 1.0);
  m.add_constraint({{b, 1.0}, {c, 1.0}}, milp::Sense::kGe, 1.0);
  m.add_constraint({{a, 1.0}, {d, 1.0}}, milp::Sense::kGe, 1.0);
  return m;
}

TEST_F(ObsSolverTest, MilpCountersMatchMipResult) {
  const milp::Model m = cover_model();

  milp::BnbOptions opt;
  int handler_calls = 0;
  // Lazy handler: rejects any candidate using fewer than three variables.
  // The unconstrained optimum ({a, c}, cost 8) violates it, so the search
  // must add at least one cut and settle on a three-variable cover.
  opt.lazy_handler = [&](const std::vector<double>& x) {
    ++handler_calls;
    std::vector<milp::Constraint> cuts;
    if (x[0] + x[1] + x[2] + x[3] < 3.0 - 1e-6) {
      cuts.push_back(milp::Constraint{
          {{0, 1.0}, {1, 1.0}, {2, 1.0}, {3, 1.0}}, milp::Sense::kGe, 3.0});
    }
    return cuts;
  };

  const milp::MipResult r = milp::solve(m, opt);
  ASSERT_EQ(r.status, milp::MipStatus::kOptimal);
  EXPECT_GT(handler_calls, 0);
  EXPECT_GT(r.lazy_constraints_added, 0);

  const auto counters = reg_.counters();
  ASSERT_TRUE(counters.count("milp.nodes"));
  EXPECT_GE(r.nodes, 1);
  EXPECT_EQ(counters.at("milp.nodes"), r.nodes);
  ASSERT_TRUE(counters.count("milp.lazy_cuts"));
  EXPECT_EQ(counters.at("milp.lazy_cuts"), r.lazy_constraints_added);
  EXPECT_EQ(counters.at("milp.solves"), 1);

  // The simplex ran under the solver and reported pivots.
  ASSERT_TRUE(counters.count("lp.pivots"));
  EXPECT_GT(counters.at("lp.pivots"), 0);
  EXPECT_EQ(counters.at("lp.solves"),
            static_cast<long long>(reg_.spans().size() -
                                   1));  // all spans but milp.solve are LP
}

TEST_F(ObsSolverTest, IncumbentTimelineIsMonotoneAndEndsAtOptimum) {
  const milp::MipResult r = milp::solve(cover_model());
  ASSERT_EQ(r.status, milp::MipStatus::kOptimal);

  const auto series = reg_.series();
  ASSERT_TRUE(series.count("milp.incumbent"));
  const std::vector<obs::SeriesPoint>& timeline = series.at("milp.incumbent");
  ASSERT_GE(timeline.size(), 1u);
  // Minimization: every new incumbent improves, timestamps advance.
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_LT(timeline[i].value, timeline[i - 1].value);
    EXPECT_GE(timeline[i].t_us, timeline[i - 1].t_us);
  }
  EXPECT_NEAR(timeline.back().value, r.objective, 1e-6);
  EXPECT_EQ(reg_.counters().at("milp.incumbents"),
            static_cast<long long>(timeline.size()));
}

TEST_F(ObsSolverTest, WarmStartSeedsTheTimeline) {
  milp::Model m = cover_model();
  milp::BnbOptions opt;
  opt.warm_start = std::vector<double>{1.0, 1.0, 1.0, 1.0};  // cost 18
  const milp::MipResult r = milp::solve(m, opt);
  ASSERT_EQ(r.status, milp::MipStatus::kOptimal);

  const auto timeline = reg_.series().at("milp.incumbent");
  ASSERT_GE(timeline.size(), 2u);  // the seed, then at least one improvement
  EXPECT_NEAR(timeline.front().value, 18.0, 1e-6);
  EXPECT_NEAR(timeline.back().value, r.objective, 1e-6);
}

TEST_F(ObsSolverTest, SynthesisSpanTreeCoversTheFourSteps) {
  const auto fp = netlist::Floorplan::standard(8);
  const Synthesizer synth(fp);
  const SynthesisResult r = synth.run({});

  const std::vector<obs::SpanEvent> spans = reg_.spans();
  std::set<std::string> names;
  for (const obs::SpanEvent& ev : spans) names.insert(ev.name);
  for (const char* required :
       {"synth", "ring_construction", "milp.solve", "lp.solve", "shortcuts",
        "mapping", "opening", "pdn", "evaluate"}) {
    EXPECT_TRUE(names.count(required)) << "missing span: " << required;
  }

  // The root span closes last and encloses every other span.
  const obs::SpanEvent& root = spans.back();
  EXPECT_EQ(root.name, "synth");
  EXPECT_EQ(root.depth, 0);
  for (const obs::SpanEvent& ev : spans) {
    if (ev.name == "synth") continue;
    EXPECT_GE(ev.start_us, root.start_us - 1.0) << ev.name;
    EXPECT_LE(ev.start_us + ev.dur_us, root.start_us + root.dur_us + 1.0)
        << ev.name;
    EXPECT_GT(ev.depth, 0) << ev.name;
  }

  // `seconds` is derived from the root span.
  EXPECT_NEAR(r.seconds, root.dur_us * 1e-6, 0.05);

  // Pipeline metrics arrived alongside the spans.
  const auto flat = reg_.flatten();
  EXPECT_GE(flat.at("milp.nodes"), 1.0);
  EXPECT_GT(flat.at("lp.pivots"), 0.0);
  EXPECT_GT(flat.at("mapping.wavelengths_used"), 0.0);
  EXPECT_GT(flat.at("mapping.openings_inserted"), 0.0);
  EXPECT_GT(flat.at("span.synth.total_s"), 0.0);
}

TEST_F(ObsSolverTest, RunWithRingChargesRingTimeIntoSeconds) {
  const auto fp = netlist::Floorplan::standard(8);
  const Synthesizer synth(fp);
  const auto ring = ring::build_ring(fp, synth.oracle(), {});

  const SynthesisResult direct = synth.run({});
  const SynthesisResult reused = synth.run_with_ring({}, ring);
  // Both entry points report full Step 1-4 synthesis times: the reused-ring
  // path charges the prebuilt ring's build time.
  EXPECT_GE(reused.seconds, ring.seconds);
  EXPECT_GT(direct.seconds, 0.0);
}

TEST_F(ObsSolverTest, SimulatorReportsFlitCounters) {
  const auto fp = netlist::Floorplan::standard(8);
  const Synthesizer synth(fp);
  const SynthesisResult r = synth.run({});
  sim::SimOptions so;
  so.duration_us = 0.5;
  const sim::SimReport rep = sim::simulate(r.design, r.metrics, so);

  const auto counters = reg_.counters();
  EXPECT_EQ(counters.at("sim.runs"), 1);
  EXPECT_EQ(counters.at("sim.flits_delivered"), rep.total_flits);
  EXPECT_GE(counters.at("sim.flits_sent"), rep.total_flits);
  EXPECT_GT(counters.at("sim.slots"), 0);
}

TEST_F(ObsSolverTest, DisabledTracingStillReportsSeconds) {
  obs::set_enabled(false);
  const auto fp = netlist::Floorplan::standard(8);
  const Synthesizer synth(fp);
  const SynthesisResult r = synth.run({});
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_TRUE(reg_.spans().empty());
  EXPECT_TRUE(reg_.flatten().empty());
}

}  // namespace
}  // namespace xring
