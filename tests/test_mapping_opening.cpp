#include <gtest/gtest.h>

#include "mapping/opening.hpp"
#include "mapping/ornoc_assignment.hpp"
#include "ring/builder.hpp"

namespace xring::mapping {
namespace {

struct Fixture {
  explicit Fixture(int n, int max_wl)
      : fp(netlist::Floorplan::standard(n)),
        traffic(netlist::Traffic::all_to_all(n)),
        ring(ring::build_ring(fp).geometry),
        plan(shortcut::build_shortcuts(ring, fp)) {
    opt.max_wavelengths = max_wl;
    mapping = assign_wavelengths(ring.tour, traffic, plan, opt);
    stats = create_openings(ring.tour, traffic, mapping, opt);
  }
  netlist::Floorplan fp;
  netlist::Traffic traffic;
  ring::RingGeometry ring;
  shortcut::ShortcutPlan plan;
  MappingOptions opt;
  Mapping mapping;
  OpeningStats stats;
};

TEST(Opening, EveryWaveguideGetsAnOpening) {
  const Fixture f(16, 16);
  for (const RingWaveguide& w : f.mapping.waveguides) {
    EXPECT_GE(w.opening, 0);
    EXPECT_LT(w.opening, 16);
  }
}

TEST(Opening, NoSignalPassesItsWaveguideOpening) {
  for (const int n : {8, 16, 32}) {
    const Fixture f(n, n);
    for (std::size_t w = 0; w < f.mapping.waveguides.size(); ++w) {
      const RingWaveguide& wg = f.mapping.waveguides[w];
      EXPECT_EQ(passing_signals(f.ring.tour, f.traffic, f.mapping,
                                static_cast<int>(w), wg.opening),
                0)
          << n << "-node network, waveguide " << w;
    }
  }
}

TEST(Opening, MappingStaysValidAfterRelocation) {
  const Fixture f(16, 16);
  // Every signal still routed; waveguide lists consistent with routes.
  for (std::size_t id = 0; id < f.mapping.routes.size(); ++id) {
    const SignalRoute& r = f.mapping.routes[id];
    EXPECT_NE(r.kind, RouteKind::kUnrouted);
    if (r.kind == RouteKind::kRingCw || r.kind == RouteKind::kRingCcw) {
      const auto& sigs = f.mapping.waveguides[r.waveguide].signals;
      EXPECT_EQ(
          std::count(sigs.begin(), sigs.end(), static_cast<SignalId>(id)), 1);
    }
  }
}

TEST(Opening, ArcDisjointnessSurvivesRelocation) {
  const Fixture f(16, 16);
  const auto& tour = f.ring.tour;
  for (std::size_t w = 0; w < f.mapping.waveguides.size(); ++w) {
    const RingWaveguide& wg = f.mapping.waveguides[w];
    for (std::size_t i = 0; i < wg.signals.size(); ++i) {
      for (std::size_t j = i + 1; j < wg.signals.size(); ++j) {
        const SignalId a = wg.signals[i], b = wg.signals[j];
        if (f.mapping.routes[a].wavelength != f.mapping.routes[b].wavelength) {
          continue;
        }
        const auto& sa = f.traffic.signal(a);
        const auto& sb = f.traffic.signal(b);
        std::vector<bool> hops(tour.size(), false);
        for (const int h : occupied_hops(tour, sa.src, sa.dst, wg.dir)) {
          hops[h] = true;
        }
        for (const int h : occupied_hops(tour, sb.src, sb.dst, wg.dir)) {
          EXPECT_FALSE(hops[h]);
        }
      }
    }
  }
}

TEST(Opening, DisabledLeavesWaveguidesUnbroken) {
  const auto fp = netlist::Floorplan::standard(8);
  const auto traffic = netlist::Traffic::all_to_all(8);
  const auto ring = ring::build_ring(fp).geometry;
  MappingOptions mo;
  mo.max_wavelengths = 8;
  Mapping m = assign_wavelengths(ring.tour, traffic, {}, mo);
  OpeningOptions oo;
  oo.enable = false;
  create_openings(ring.tour, traffic, m, mo, oo);
  for (const RingWaveguide& w : m.waveguides) EXPECT_EQ(w.opening, -1);
}

TEST(Opening, PassingSignalCountMatchesManualCount) {
  const Fixture f(8, 8);
  const auto& tour = f.ring.tour;
  for (std::size_t w = 0; w < f.mapping.waveguides.size(); ++w) {
    const RingWaveguide& wg = f.mapping.waveguides[w];
    for (int pos = 0; pos < tour.size(); ++pos) {
      const netlist::NodeId v = tour.at(pos);
      int manual = 0;
      for (const SignalId id : wg.signals) {
        const auto& sig = f.traffic.signal(id);
        const auto inner = interior_nodes(tour, sig.src, sig.dst, wg.dir);
        manual += std::count(inner.begin(), inner.end(), v) > 0 ? 1 : 0;
      }
      EXPECT_EQ(passing_signals(tour, f.traffic, f.mapping,
                                static_cast<int>(w), v),
                manual);
    }
  }
}

TEST(OrnocAssignment, RoutesEverythingWithinCap) {
  const auto fp = netlist::Floorplan::standard(16);
  const auto traffic = netlist::Traffic::all_to_all(16);
  const auto ring = ring::build_ring(fp).geometry;
  const Mapping m = ornoc_assignment(ring.tour, traffic, 16);
  for (const SignalRoute& r : m.routes) {
    EXPECT_TRUE(r.kind == RouteKind::kRingCw || r.kind == RouteKind::kRingCcw);
    EXPECT_GE(r.wavelength, 0);
    EXPECT_LT(r.wavelength, 16);
  }
}

TEST(OrnocAssignment, PacksDenserThanFfdAtTheCostOfDetours) {
  const auto fp = netlist::Floorplan::standard(16);
  const auto traffic = netlist::Traffic::all_to_all(16);
  const auto ring = ring::build_ring(fp).geometry;
  const Mapping ornoc = ornoc_assignment(ring.tour, traffic, 16);

  // ORNoC sends some signals the long way around: at least one route whose
  // direction is not the shorter arc.
  int long_way = 0;
  for (const auto& sig : traffic.signals()) {
    const SignalRoute& r = ornoc.routes[sig.id];
    const geom::Coord cw = ring.tour.arc_length_cw(sig.src, sig.dst);
    const geom::Coord ccw = ring.tour.arc_length_ccw(sig.src, sig.dst);
    const bool took_cw = r.kind == RouteKind::kRingCw;
    if ((took_cw && cw > ccw) || (!took_cw && ccw > cw)) ++long_way;
  }
  EXPECT_GT(long_way, 0);
}

TEST(OrnocAssignment, ArcDisjointInvariantHolds) {
  const auto fp = netlist::Floorplan::standard(8);
  const auto traffic = netlist::Traffic::all_to_all(8);
  const auto ring = ring::build_ring(fp).geometry;
  const Mapping m = ornoc_assignment(ring.tour, traffic, 8);
  for (std::size_t w = 0; w < m.waveguides.size(); ++w) {
    const RingWaveguide& wg = m.waveguides[w];
    for (std::size_t i = 0; i < wg.signals.size(); ++i) {
      for (std::size_t j = i + 1; j < wg.signals.size(); ++j) {
        const SignalId a = wg.signals[i], b = wg.signals[j];
        if (m.routes[a].wavelength != m.routes[b].wavelength) continue;
        const auto& sa = traffic.signal(a);
        const auto& sb = traffic.signal(b);
        std::vector<bool> hops(ring.tour.size(), false);
        for (const int h :
             occupied_hops(ring.tour, sa.src, sa.dst, wg.dir)) {
          hops[h] = true;
        }
        for (const int h :
             occupied_hops(ring.tour, sb.src, sb.dst, wg.dir)) {
          EXPECT_FALSE(hops[h]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace xring::mapping
