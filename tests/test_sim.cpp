#include <gtest/gtest.h>

#include <cmath>

#include "baseline/oring.hpp"
#include "sim/simulator.hpp"
#include "xring/synthesizer.hpp"

namespace xring::sim {
namespace {

struct Fixture {
  Fixture()
      : fp(netlist::Floorplan::standard(8)), synth(fp), result(synth.run()) {}
  netlist::Floorplan fp;
  Synthesizer synth;
  SynthesisResult result;
};

TEST(BerModel, MonotoneInSnr) {
  EXPECT_EQ(ber_from_snr_db(analysis::kNoNoiseSnr), 0.0);
  EXPECT_GT(ber_from_snr_db(6.0), ber_from_snr_db(12.0));
  EXPECT_GT(ber_from_snr_db(12.0), ber_from_snr_db(20.0));
  // Known point: Q = 6 (SNR ~15.6 dB) gives BER ~1e-9.
  const double ber = ber_from_snr_db(10.0 * std::log10(36.0));
  EXPECT_GT(ber, 1e-10);
  EXPECT_LT(ber, 1e-8);
}

TEST(Simulator, FlitConservation) {
  const Fixture f;
  const SimReport r = simulate(f.result.design, f.result.metrics);
  long sent = 0, delivered = 0;
  for (const FlowStats& fs : r.flows) {
    sent += fs.flits_sent;
    delivered += fs.flits_delivered;
    EXPECT_LE(fs.flits_delivered, fs.flits_sent);
  }
  // One flit can still be in flight per flow at the end of the run.
  EXPECT_GE(delivered, sent - static_cast<long>(r.flows.size()));
  EXPECT_EQ(delivered, r.total_flits);
}

TEST(Simulator, ContentionFreedom) {
  // The WRONoC property: no queueing, so every flit's latency is exactly
  // serialization + time of flight.
  const Fixture f;
  SimOptions opt;
  opt.offered_load = 0.9;  // high load — still no contention
  const SimReport r = simulate(f.result.design, f.result.metrics, opt);
  const double slot_ns = opt.flit_bits / opt.bitrate_gbps;
  for (std::size_t i = 0; i < r.flows.size(); ++i) {
    if (r.flows[i].flits_delivered == 0) continue;
    const double tof_ns = f.result.metrics.signals[i].path_mm *
                          opt.group_index / 299.792458;
    EXPECT_NEAR(r.flows[i].avg_latency_ns, slot_ns + tof_ns, 1e-6);
    EXPECT_NEAR(r.flows[i].max_latency_ns, slot_ns + tof_ns, 1e-6);
  }
}

TEST(Simulator, ThroughputTracksOfferedLoad) {
  const Fixture f;
  SimOptions low;
  low.offered_load = 0.2;
  low.duration_us = 5.0;
  SimOptions high = low;
  high.offered_load = 0.8;
  const SimReport rl = simulate(f.result.design, f.result.metrics, low);
  const SimReport rh = simulate(f.result.design, f.result.metrics, high);
  EXPECT_NEAR(rh.aggregate_throughput_gbps / rl.aggregate_throughput_gbps,
              4.0, 0.4);
  // Aggregate ~= nodes * load * bitrate.
  EXPECT_NEAR(rh.aggregate_throughput_gbps, 8 * 0.8 * 10.0,
              0.15 * 8 * 0.8 * 10.0);
}

TEST(Simulator, DeterministicForFixedSeed) {
  const Fixture f;
  const SimReport a = simulate(f.result.design, f.result.metrics);
  const SimReport b = simulate(f.result.design, f.result.metrics);
  EXPECT_EQ(a.total_flits, b.total_flits);
  EXPECT_DOUBLE_EQ(a.aggregate_throughput_gbps, b.aggregate_throughput_gbps);
  SimOptions other;
  other.seed = 99;
  const SimReport c = simulate(f.result.design, f.result.metrics, other);
  EXPECT_NE(a.total_flits, c.total_flits);
}

TEST(Simulator, CleanXRingHasZeroBitErrors) {
  const Fixture f;
  const SimReport r = simulate(f.result.design, f.result.metrics);
  EXPECT_EQ(r.worst_ber, 0.0);
  for (const FlowStats& fs : r.flows) EXPECT_EQ(fs.bit_errors, 0);
}

TEST(Simulator, NoisyBaselineHasWorseBer) {
  const auto fp = netlist::Floorplan::standard(16);
  const auto ring = ring::build_ring(fp);
  baseline::OringOptions oo;
  oo.max_wavelengths = 16;
  oo.params.crosstalk.crossing_db = -22.0;  // harsh crosstalk regime
  const auto orr = baseline::synthesize_oring(fp, ring, oo);
  const SimReport r = simulate(orr.design, orr.metrics);
  EXPECT_GT(r.worst_ber, 0.0);
}

TEST(Simulator, EnergyPerBitMatchesPowerOverThroughput) {
  const Fixture f;
  const SimReport r = simulate(f.result.design, f.result.metrics);
  ASSERT_GT(r.aggregate_throughput_gbps, 0.0);
  EXPECT_NEAR(r.energy_per_bit_pj,
              f.result.metrics.total_power_w /
                  r.aggregate_throughput_gbps * 1000.0,
              1e-9);
}

TEST(Simulator, BurstyMessagesCreateQueueingDelay) {
  // With multi-flit messages the source serializer backs up: max latency
  // exceeds the contention-free floor, average grows, but throughput is
  // conserved (the channel still drains everything).
  const Fixture f;
  SimOptions smooth;
  smooth.offered_load = 0.6;
  smooth.duration_us = 5.0;
  SimOptions bursty = smooth;
  bursty.mean_message_flits = 8;
  const SimReport rs = simulate(f.result.design, f.result.metrics, smooth);
  const SimReport rb = simulate(f.result.design, f.result.metrics, bursty);
  EXPECT_GT(rb.avg_latency_ns, rs.avg_latency_ns);
  double worst_smooth = 0, worst_bursty = 0;
  for (const auto& fl : rs.flows) worst_smooth = std::max(worst_smooth, fl.max_latency_ns);
  for (const auto& fl : rb.flows) worst_bursty = std::max(worst_bursty, fl.max_latency_ns);
  EXPECT_GT(worst_bursty, worst_smooth);
  // Offered load identical: throughput within sampling noise.
  EXPECT_NEAR(rb.aggregate_throughput_gbps, rs.aggregate_throughput_gbps,
              0.25 * rs.aggregate_throughput_gbps);
}

TEST(Simulator, SingleFlitMessagesKeepTheLatencyFloor) {
  const Fixture f;
  SimOptions opt;
  opt.mean_message_flits = 1;
  const SimReport r = simulate(f.result.design, f.result.metrics, opt);
  const double slot_ns = opt.flit_bits / opt.bitrate_gbps;
  for (std::size_t i = 0; i < r.flows.size(); ++i) {
    if (r.flows[i].flits_delivered == 0) continue;
    const double tof_ns = f.result.metrics.signals[i].path_mm *
                          opt.group_index / 299.792458;
    EXPECT_NEAR(r.flows[i].max_latency_ns, slot_ns + tof_ns, 1e-6);
  }
}

}  // namespace
}  // namespace xring::sim
