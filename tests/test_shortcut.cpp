#include <gtest/gtest.h>

#include "ring/builder.hpp"
#include "shortcut/shortcut.hpp"

namespace xring::shortcut {
namespace {

ring::RingGeometry make_ring(const netlist::Floorplan& fp) {
  return ring::build_ring(fp).geometry;
}

TEST(Shortcut, BoundaryLayoutReproducesFig7CrossChords) {
  // The paper's Fig. 7 situation: on a loop layout, the two straight chords
  // between opposite mid-edge nodes (1-5 vertical, 3-7 horizontal on the
  // 3x3 boundary) each halve their ring path, cross each other at the
  // centre, and are merged into a CSE.
  const auto fp = netlist::Floorplan::ring_layout(3, 3, 1000);
  const auto ring = make_ring(fp);
  const ShortcutPlan plan = build_shortcuts(ring, fp);
  ASSERT_EQ(plan.shortcuts.size(), 2u);
  for (const Shortcut& s : plan.shortcuts) {
    EXPECT_EQ(s.length, 2000);
    EXPECT_EQ(s.gain, 2000);
    EXPECT_GE(s.crossing_partner, 0);
    ASSERT_TRUE(s.crossing.has_value());
    EXPECT_EQ(*s.crossing, (geom::Point{1000, 1000}));
  }
  // A crossing pair yields the 8 directed CSE routes of Fig. 7(b).
  EXPECT_EQ(plan.cse_routes.size(), 8u);
}

TEST(Shortcut, SerpentineGridGetsShortcuts) {
  // The paper's Fig. 2 situation: a serpentine over a 4x4 grid leaves
  // physically adjacent row-end nodes far apart along the ring.
  const auto fp = netlist::Floorplan::standard(16);
  const auto ring = make_ring(fp);
  const ShortcutPlan plan = build_shortcuts(ring, fp);
  EXPECT_FALSE(plan.shortcuts.empty());
  for (const Shortcut& s : plan.shortcuts) {
    EXPECT_GT(s.gain, 0);
    EXPECT_EQ(s.length, fp.distance(s.a, s.b));
    // Gain definition: min ring arc minus chord length (Sec. III-B).
    const geom::Coord ring_len = std::min(ring.tour.arc_length_cw(s.a, s.b),
                                          ring.tour.arc_length_ccw(s.a, s.b));
    EXPECT_EQ(s.gain, ring_len - s.length);
  }
}

TEST(Shortcut, AtMostOneShortcutPerNode) {
  for (const int n : {16, 32}) {
    const auto fp = netlist::Floorplan::standard(n);
    const ShortcutPlan plan = build_shortcuts(make_ring(fp), fp);
    std::vector<int> uses(n, 0);
    for (const Shortcut& s : plan.shortcuts) {
      uses[s.a]++;
      uses[s.b]++;
    }
    for (const int u : uses) EXPECT_LE(u, 1);
  }
}

TEST(Shortcut, DisabledOptionReturnsEmptyPlan) {
  const auto fp = netlist::Floorplan::standard(16);
  ShortcutOptions opt;
  opt.enable = false;
  const ShortcutPlan plan = build_shortcuts(make_ring(fp), fp, opt);
  EXPECT_TRUE(plan.shortcuts.empty());
  EXPECT_TRUE(plan.cse_routes.empty());
}

TEST(Shortcut, ChordsDoNotCrossTheRing) {
  const auto fp = netlist::Floorplan::standard(32);
  const auto ring = make_ring(fp);
  const ShortcutPlan plan = build_shortcuts(ring, fp);
  for (const Shortcut& s : plan.shortcuts) {
    const geom::LRoute chord(fp.position(s.a), fp.position(s.b), s.order);
    EXPECT_EQ(ring.polyline.crossings_with(chord), 0)
        << "shortcut " << s.a << "-" << s.b;
  }
}

TEST(Shortcut, FindIsDirectionInsensitive) {
  const auto fp = netlist::Floorplan::standard(16);
  const ShortcutPlan plan = build_shortcuts(make_ring(fp), fp);
  ASSERT_FALSE(plan.shortcuts.empty());
  const Shortcut& s = plan.shortcuts.front();
  EXPECT_EQ(plan.find(s.a, s.b), 0);
  EXPECT_EQ(plan.find(s.b, s.a), 0);
  EXPECT_EQ(plan.find(s.a, s.a), -1);
}

TEST(Shortcut, FeasibleChordHonoursCrossings) {
  // Hand-built square ring 0-1-2-3; the diagonal chord cannot avoid the
  // ring on a plain square... it actually can: it stays inside. Verify the
  // helper agrees with a direct geometric check.
  const auto fp = netlist::Floorplan::grid(2, 2, 1000);
  const auto ring = make_ring(fp);
  for (netlist::NodeId a = 0; a < 4; ++a) {
    for (netlist::NodeId b = a + 1; b < 4; ++b) {
      const auto order = feasible_chord(ring, fp, a, b);
      if (order) {
        const geom::LRoute chord(fp.position(a), fp.position(b), *order);
        EXPECT_EQ(ring.polyline.crossings_with(chord), 0);
      }
    }
  }
}

/// A layout engineered to make two selected shortcuts cross: a long thin
/// "ladder" whose rungs are far apart along the ring but close in space.
class CrossingShortcuts : public ::testing::Test {
 protected:
  CrossingShortcuts() {
    // Two columns of nodes; the ring snakes so that column-mates are far
    // apart along it, and the two best chords cross each other.
    std::vector<netlist::Node> nodes;
    const geom::Point pts[] = {
        {0, 0},     {2000, 0},     {4000, 0},     {6000, 0},
        {6000, 9000}, {4000, 9000}, {2000, 9000}, {0, 9000},
    };
    for (const auto& p : pts) nodes.push_back({0, p, ""});
    fp_ = std::make_unique<netlist::Floorplan>(std::move(nodes), 8000, 10000);
  }
  std::unique_ptr<netlist::Floorplan> fp_;
};

TEST_F(CrossingShortcuts, CrossedPairBecomesCse) {
  const auto ring = make_ring(*fp_);
  const ShortcutPlan plan = build_shortcuts(ring, *fp_);
  int crossed = 0;
  for (std::size_t i = 0; i < plan.shortcuts.size(); ++i) {
    const Shortcut& s = plan.shortcuts[i];
    if (s.crossing_partner >= 0) {
      ++crossed;
      // Partner links must be mutual and carry the same crossing point.
      const Shortcut& p = plan.shortcuts[s.crossing_partner];
      EXPECT_EQ(p.crossing_partner, static_cast<int>(i));
      ASSERT_TRUE(s.crossing.has_value());
      ASSERT_TRUE(p.crossing.has_value());
      EXPECT_EQ(*s.crossing, *p.crossing);
    }
  }
  if (crossed > 0) {
    EXPECT_EQ(crossed % 2, 0);  // crossings come in pairs
    EXPECT_FALSE(plan.cse_routes.empty());
    for (const CseRoute& r : plan.cse_routes) {
      EXPECT_NE(r.src, r.dst);
      EXPECT_NE(r.shortcut_in, r.shortcut_out);
      EXPECT_GT(r.length, 0);
    }
  }
}

TEST(Shortcut, CseRouteLengthsAreTriangleConsistent) {
  // Whatever CSE routes exist, src->X->dst can never beat the Manhattan
  // distance and never exceed the sum of both chords.
  const auto fp = netlist::Floorplan::standard(32);
  const auto ring = make_ring(fp);
  const ShortcutPlan plan = build_shortcuts(ring, fp);
  for (const CseRoute& r : plan.cse_routes) {
    EXPECT_GE(r.length, fp.distance(r.src, r.dst));
    EXPECT_LE(r.length, plan.shortcuts[r.shortcut_in].length +
                            plan.shortcuts[r.shortcut_out].length);
  }
}

}  // namespace
}  // namespace xring::shortcut
