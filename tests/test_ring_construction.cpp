#include <gtest/gtest.h>

#include "ring/builder.hpp"

namespace xring::ring {
namespace {

TEST(EdgeSpace, IndexRoundTrip) {
  const EdgeSpace es(5);
  EXPECT_EQ(es.count(), 20);
  for (int e = 0; e < es.count(); ++e) {
    const auto [from, to] = es.edge(e);
    EXPECT_NE(from, to);
    EXPECT_EQ(es.index(from, to), e);
  }
}

TEST(EdgeSpace, ReverseIsInvolution) {
  const EdgeSpace es(6);
  for (int e = 0; e < es.count(); ++e) {
    EXPECT_NE(es.reverse(e), e);
    EXPECT_EQ(es.reverse(es.reverse(e)), e);
  }
}

TEST(ConflictOracle, SameEdgeNeverConflicts) {
  const auto fp = netlist::Floorplan::grid(2, 2, 10);
  const ConflictOracle oracle(fp);
  EXPECT_FALSE(oracle.conflict(0, 1, 0, 1));
  EXPECT_FALSE(oracle.conflict(0, 1, 1, 0));
}

TEST(ConflictOracle, MatchesDirectGeometryTest) {
  const auto fp = netlist::Floorplan::grid(3, 3, 10);
  const ConflictOracle oracle(fp);
  for (netlist::NodeId a = 0; a < 9; ++a) {
    for (netlist::NodeId b = a + 1; b < 9; ++b) {
      for (netlist::NodeId c = 0; c < 9; ++c) {
        for (netlist::NodeId d = c + 1; d < 9; ++d) {
          if (a == c && b == d) continue;
          const bool direct =
              a == c || a == d || b == c || b == d
                  ? false
                  : geom::edges_conflict(fp.position(a), fp.position(b),
                                         fp.position(c), fp.position(d));
          EXPECT_EQ(oracle.conflict(a, b, c, d), direct)
              << a << "," << b << " vs " << c << "," << d;
        }
      }
    }
  }
}

TEST(Tour, ArcLengthsAndHops) {
  const auto fp = netlist::Floorplan::grid(1, 4, 10);  // collinear 4 nodes
  const Tour t({0, 1, 2, 3}, &fp);
  EXPECT_EQ(t.total_length(), 10 + 10 + 10 + 30);
  EXPECT_EQ(t.hops_cw(0, 2), 2);
  EXPECT_EQ(t.hops_cw(2, 0), 2);
  EXPECT_EQ(t.arc_length_cw(0, 2), 20);
  EXPECT_EQ(t.arc_length_ccw(0, 2), 40);
  EXPECT_EQ(t.arc_length_cw(3, 0), 30);
}

TEST(Tour, ArcIdentity) {
  const auto fp = netlist::Floorplan::standard(8);
  const Tour t({0, 1, 2, 3, 7, 6, 5, 4}, &fp);
  for (netlist::NodeId a = 0; a < 8; ++a) {
    for (netlist::NodeId b = 0; b < 8; ++b) {
      if (a == b) continue;
      EXPECT_EQ(t.arc_length_cw(a, b) + t.arc_length_ccw(a, b),
                t.total_length());
      EXPECT_EQ(t.arc_length_cw(a, b), t.arc_length_ccw(b, a));
    }
  }
}

TEST(Tour, HopsOnArc) {
  const auto fp = netlist::Floorplan::grid(1, 4, 10);
  const Tour t({0, 1, 2, 3}, &fp);
  EXPECT_EQ(t.hops_on_arc_cw(1, 3), (std::vector<int>{1, 2}));
  EXPECT_EQ(t.hops_on_arc_cw(3, 1), (std::vector<int>{3, 0}));
}

TEST(Tour, RejectsDuplicatesAndTiny) {
  EXPECT_THROW(Tour({0, 1}), std::invalid_argument);
  EXPECT_THROW(Tour({0, 1, 1}), std::invalid_argument);
}

TEST(ExtractCycles, SplitsPermutationIntoCycles) {
  // 0->1->0 and 2->3->4->2.
  const std::vector<std::pair<netlist::NodeId, netlist::NodeId>> edges = {
      {0, 1}, {1, 0}, {2, 3}, {3, 4}, {4, 2}};
  const auto cycles = extract_cycles(edges, 5);
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0].size() + cycles[1].size(), 5u);
}

TEST(ExtractCycles, RejectsDoubleOutDegree) {
  EXPECT_THROW(extract_cycles({{0, 1}, {0, 2}}, 3), std::invalid_argument);
}

TEST(MergeCycles, ProducesSingleCycleVisitingAll) {
  const auto fp = netlist::Floorplan::standard(16);
  const ConflictOracle oracle(fp);
  // Four 4-cycles over the 4x4 grid (the typical MILP sub-cycle outcome).
  std::vector<Cycle> cycles = {
      {0, 1, 5, 4}, {2, 3, 7, 6}, {8, 9, 13, 12}, {10, 11, 15, 14}};
  const Cycle merged = merge_cycles(cycles, fp, oracle);
  ASSERT_EQ(merged.size(), 16u);
  std::vector<bool> seen(16, false);
  for (const netlist::NodeId v : merged) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(MergeCycles, SingleCycleIsReturnedVerbatim) {
  const auto fp = netlist::Floorplan::standard(8);
  const ConflictOracle oracle(fp);
  const Cycle c = {0, 1, 2, 3, 7, 6, 5, 4};
  EXPECT_EQ(merge_cycles({c}, fp, oracle), c);
}

TEST(Heuristic, ToursAreValidPermutations) {
  for (const int n : {8, 16}) {
    const auto fp = netlist::Floorplan::standard(n);
    const ConflictOracle oracle(fp);
    const auto tour = heuristic_tour(fp, oracle);
    ASSERT_EQ(static_cast<int>(tour.size()), n);
    std::vector<bool> seen(n, false);
    for (const netlist::NodeId v : tour) {
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
    }
  }
}

TEST(Heuristic, GridTourIsConflictFreeAndTight) {
  const auto fp = netlist::Floorplan::standard(16);
  const ConflictOracle oracle(fp);
  const auto tour = heuristic_tour(fp, oracle);
  EXPECT_EQ(tour_conflicts(tour, oracle), 0);
  // A Hamiltonian cycle of unit edges exists on the 4x4 grid: 32 mm.
  EXPECT_LE(tour_length(tour, fp), 36000);
}

TEST(Builder, EightNodeOptimalPerimeter) {
  const auto fp = netlist::Floorplan::standard(8);
  const RingBuildResult r = build_ring(fp);
  EXPECT_EQ(r.mip_status, milp::MipStatus::kOptimal);
  // 2x4 grid perimeter: 2 * (3 + 1) * 2 mm.
  EXPECT_EQ(r.geometry.tour.total_length(), 16000);
  EXPECT_EQ(r.geometry.crossings, 0);
}

TEST(Builder, SixteenNodeOptimalHamiltonianCycle) {
  const auto fp = netlist::Floorplan::standard(16);
  const RingBuildResult r = build_ring(fp);
  EXPECT_EQ(r.mip_status, milp::MipStatus::kOptimal);
  EXPECT_EQ(r.geometry.tour.total_length(), 32000);  // all unit edges
  EXPECT_EQ(r.geometry.crossings, 0);
}

TEST(Builder, LazyAndExhaustiveConflictModesAgree) {
  // On a small irregular instance both modes must reach the same optimum.
  std::vector<netlist::Node> nodes;
  const geom::Point pts[] = {{0, 0}, {3000, 500}, {5000, 2500},
                             {2500, 4000}, {500, 2600}, {4200, 4800}};
  for (const auto& p : pts) nodes.push_back({0, p, ""});
  const netlist::Floorplan fp(std::move(nodes), 6000, 6000);

  RingBuildOptions lazy;
  lazy.conflict_mode = ConflictMode::kLazy;
  RingBuildOptions full;
  full.conflict_mode = ConflictMode::kExhaustive;
  const auto a = build_ring(fp, lazy);
  const auto b = build_ring(fp, full);
  EXPECT_EQ(a.geometry.tour.total_length(), b.geometry.tour.total_length());
}

TEST(Builder, HeuristicOnlyModeWorks) {
  const auto fp = netlist::Floorplan::standard(16);
  RingBuildOptions opt;
  opt.use_milp = false;
  const RingBuildResult r = build_ring(fp, opt);
  EXPECT_EQ(static_cast<int>(r.geometry.tour.order().size()), 16);
  EXPECT_EQ(r.geometry.crossings, 0);
}

TEST(Builder, IrregularLayoutStaysCrossingFree) {
  std::vector<netlist::Node> nodes;
  const geom::Point pts[] = {{0, 0},       {4000, 800},  {7500, 300},
                             {9000, 3500}, {6500, 6000}, {8800, 8200},
                             {4200, 9000}, {900, 7800},  {300, 4200},
                             {3000, 4600}};
  for (const auto& p : pts) nodes.push_back({0, p, ""});
  const netlist::Floorplan fp(std::move(nodes), 10000, 10000);
  const RingBuildResult r = build_ring(fp);
  EXPECT_TRUE(r.mip_status == milp::MipStatus::kOptimal ||
              r.mip_status == milp::MipStatus::kFeasible);
  EXPECT_EQ(r.geometry.crossings, 0);
  EXPECT_EQ(r.geometry.polyline.self_crossings(), 0);
}

/// Property sweep: rings over growing grids are permutations, conflict-free,
/// and no longer than the heuristic bound.
class BuilderGrid : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BuilderGrid, ValidRing) {
  const auto [rows, cols] = GetParam();
  const auto fp = netlist::Floorplan::grid(rows, cols, 1000);
  const ConflictOracle oracle(fp);
  const RingBuildResult r = build_ring(fp, oracle, {});
  const int n = rows * cols;
  ASSERT_EQ(static_cast<int>(r.geometry.tour.order().size()), n);
  EXPECT_EQ(r.geometry.crossings, 0);
  EXPECT_LE(r.geometry.tour.total_length(),
            tour_length(heuristic_tour(fp, oracle), fp));
}

INSTANTIATE_TEST_SUITE_P(Grids, BuilderGrid,
                         ::testing::Values(std::make_pair(2, 2),
                                           std::make_pair(2, 3),
                                           std::make_pair(3, 3),
                                           std::make_pair(2, 5),
                                           std::make_pair(3, 4),
                                           std::make_pair(4, 4)));

}  // namespace
}  // namespace xring::ring
