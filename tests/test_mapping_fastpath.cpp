// Differential test of the Step-3 incremental-search fast paths
// (mapping/occupancy.hpp): the summary-level `fits`, the cursor-resuming
// `find_first_fit`, the counting-sort opening-candidate order, the
// memoized-candidate skip, and the speculative parallel candidate
// evaluation.
//
// Three levels are compared: the production fast path, the PR-4 word scan
// kept verbatim (`fits_scan`), and the brute-force reference predicates
// (`mapping::fits`). The contract is BIT-IDENTICAL decisions — the fast
// paths may only skip work with a proof, never change an answer — so every
// test asserts exact equality of predicates, probe outcomes, complete
// mappings, and opening statistics, at 1, 2, and 8 pool jobs.

#include "mapping/occupancy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <random>
#include <set>

#include "mapping/opening.hpp"
#include "obs/context.hpp"
#include "obs/obs.hpp"
#include "par/pool.hpp"
#include "ring/builder.hpp"
#include "shortcut/shortcut.hpp"

namespace xring::mapping {
namespace {

using netlist::NodeId;
using netlist::Traffic;

Traffic random_traffic(int nodes, int signal_count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, nodes - 1);
  std::set<std::pair<int, int>> used;
  std::vector<netlist::Signal> signals;
  while (static_cast<int>(signals.size()) < signal_count) {
    const int src = pick(rng);
    const int dst = pick(rng);
    if (src == dst || !used.insert({src, dst}).second) continue;
    netlist::Signal s;
    s.id = static_cast<int>(signals.size());
    s.src = src;
    s.dst = dst;
    signals.push_back(s);
  }
  return Traffic(std::move(signals));
}

struct Instance {
  ring::RingGeometry ring;
  Traffic traffic;
  shortcut::ShortcutPlan plan;
};

netlist::Floorplan grid_floorplan(int nodes) {
  // Squarish rows x cols factorization (standard() stops at 32 nodes).
  int rows = 1;
  for (int r = 2; r * r <= nodes; ++r) {
    if (nodes % r == 0) rows = r;
  }
  return netlist::Floorplan::grid(rows, nodes / rows, 2000);
}

Instance make_instance(int nodes, const Traffic& traffic,
                       bool with_shortcuts) {
  // Identity-order tour, realized directly: Step-3 behavior does not
  // depend on tour optimality, and skipping the Step-1 MILP keeps the
  // suite fast at n >= 64 (bench/scaling does the same for its profile).
  static std::map<int, netlist::Floorplan> fps;
  auto [it, inserted] = fps.try_emplace(nodes, grid_floorplan(nodes));
  const netlist::Floorplan& fp = it->second;
  std::vector<NodeId> order(nodes);
  std::iota(order.begin(), order.end(), 0);
  Instance inst;
  inst.ring = ring::realize(ring::Tour(std::move(order), &fp), fp);
  inst.traffic = traffic;
  if (with_shortcuts) inst.plan = shortcut::build_shortcuts(inst.ring, fp);
  return inst;
}

void expect_mappings_identical(const Mapping& a, const Mapping& b) {
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i].kind, b.routes[i].kind) << "signal " << i;
    EXPECT_EQ(a.routes[i].waveguide, b.routes[i].waveguide) << "signal " << i;
    EXPECT_EQ(a.routes[i].wavelength, b.routes[i].wavelength)
        << "signal " << i;
  }
  ASSERT_EQ(a.waveguides.size(), b.waveguides.size());
  for (std::size_t w = 0; w < a.waveguides.size(); ++w) {
    EXPECT_EQ(a.waveguides[w].dir, b.waveguides[w].dir) << "waveguide " << w;
    EXPECT_EQ(a.waveguides[w].opening, b.waveguides[w].opening)
        << "waveguide " << w;
    EXPECT_EQ(a.waveguides[w].signals, b.waveguides[w].signals)
        << "waveguide " << w;
  }
  EXPECT_EQ(a.wavelengths_used, b.wavelengths_used);
}

/// Three-level fits agreement over every (waveguide, wavelength, signal) of
/// the mapping's current state: summary fast path == verbatim PR-4 word
/// scan exhaustively; the O(signals × hops)-per-call brute-force reference
/// on every `brute_stride`-th signal (1 = all — the scan itself is checked
/// against brute force exhaustively at the smaller sizes, so sampling the
/// third level at large n loses no coverage of the new fast path).
void expect_fits_three_level(const ring::Tour& tour, const Traffic& traffic,
                             Mapping& mapping, int max_wavelengths,
                             int brute_stride = 1) {
  const ArcTable arcs(tour, traffic);
  const OccupancyIndex index(arcs, mapping);
  for (int w = 0; w < static_cast<int>(mapping.waveguides.size()); ++w) {
    for (const auto& sig : traffic.signals()) {
      for (int wl = 0; wl < max_wavelengths; ++wl) {
        const bool fast = index.fits(w, wl, sig.id);
        const bool scan = index.fits_scan(w, wl, sig.id);
        ASSERT_EQ(fast, scan)
            << "summary vs scan: w=" << w << " wl=" << wl << " sig=" << sig.id;
        if (sig.id % brute_stride == 0) {
          ASSERT_EQ(scan, fits(tour, traffic, mapping, w, wl, sig.id))
              << "scan vs brute: w=" << w << " wl=" << wl << " sig=" << sig.id;
        }
      }
    }
  }
}

class FastpathAllToAll : public ::testing::TestWithParam<int> {};

// Summary-index vs PR-4 index vs brute-force on the mapped and the opened
// state. n=64 spans exactly one occupancy word (full-word summary coverage);
// the smaller sizes exercise the partial-word masks.
TEST_P(FastpathAllToAll, FitsThreeLevelAgreement) {
  const int n = GetParam();
  const Instance inst = make_instance(n, Traffic::all_to_all(n), false);
  MappingOptions mo;
  mo.max_wavelengths = std::max(4, n / 2);
  const int brute_stride = n >= 64 ? 9 : 1;
  Mapping mapping =
      assign_wavelengths(inst.ring.tour, inst.traffic, inst.plan, mo);
  expect_fits_three_level(inst.ring.tour, inst.traffic, mapping,
                          mo.max_wavelengths, brute_stride);
  create_openings(inst.ring.tour, inst.traffic, mapping, mo);
  expect_fits_three_level(inst.ring.tour, inst.traffic, mapping,
                          mo.max_wavelengths, brute_stride);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FastpathAllToAll,
                         ::testing::Values(8, 16, 32, 64));

// Seeded random traffic, including a ring size that is not a multiple of 64
// (the last occupancy word has invalid high bits — the summary's "fully
// covered" test must use the valid-bit mask, not all-ones).
TEST(FastpathRandom, FitsThreeLevelAgreementSeeded) {
  for (const int n : {16, 24, 70}) {
    for (const unsigned seed : {3u, 99u}) {
      const Traffic traffic = random_traffic(n, std::min(120, n * (n - 1)),
                                             seed);
      const Instance inst = make_instance(n, traffic, true);
      MappingOptions mo;
      mo.max_wavelengths = 6;
      Mapping mapping =
          assign_wavelengths(inst.ring.tour, inst.traffic, inst.plan, mo);
      create_openings(inst.ring.tour, inst.traffic, mapping, mo);
      expect_fits_three_level(inst.ring.tour, inst.traffic, mapping,
                              mo.max_wavelengths, n >= 64 ? 7 : 3);
    }
  }
}

// Warm-vs-cold search agreement: after arbitrary interleavings of
// transactions, rollbacks, and commits, a cursor-resuming find_first_fit
// must return exactly the slot a cold full scan (over the verbatim word
// scan) returns. This drives the removal-log dirty-reprobe path hard: every
// rollback logs bit removals that can turn previously failed slots fitting.
TEST(FastpathCursor, WarmSearchMatchesColdScanAcrossRollbacks) {
  const int n = 32;
  const Instance inst = make_instance(n, Traffic::all_to_all(n), false);
  const ring::Tour& tour = inst.ring.tour;
  MappingOptions mo;
  mo.max_wavelengths = n / 2;
  Mapping mapping =
      assign_wavelengths(tour, inst.traffic, inst.plan, mo);
  const ArcTable arcs(tour, inst.traffic);
  OccupancyIndex index(arcs, mapping);

  const auto cold_first_fit = [&](Direction dir, SignalId id, int from) {
    OccupancyIndex::Slot slot;
    for (int w = 0; w < static_cast<int>(mapping.waveguides.size()); ++w) {
      if (mapping.waveguides[w].dir != dir || w == from) continue;
      for (int wl = 0; wl < mo.max_wavelengths; ++wl) {
        if (index.fits_scan(w, wl, id)) return OccupancyIndex::Slot{w, wl};
      }
    }
    return slot;
  };

  std::mt19937 rng(2024);
  int warm_hits = 0;
  for (int round = 0; round < 40; ++round) {
    const int w = static_cast<int>(rng() % mapping.waveguides.size());
    auto signals = mapping.waveguides[w].signals;
    if (signals.empty()) continue;
    const bool keep = (rng() % 2) == 0;
    index.begin_transaction();
    for (const SignalId id : signals) {
      const Direction dir = mapping.waveguides[w].dir;
      const OccupancyIndex::Slot cold = cold_first_fit(dir, id, w);
      const OccupancyIndex::Slot warm =
          index.find_first_fit(dir, id, w, mo.max_wavelengths);
      ASSERT_EQ(warm.waveguide, cold.waveguide)
          << "round " << round << " signal " << id;
      ASSERT_EQ(warm.wavelength, cold.wavelength)
          << "round " << round << " signal " << id;
      if (warm.waveguide < 0) continue;
      index.relocate(id, warm.waveguide, warm.wavelength);
      ++warm_hits;
    }
    if (keep) {
      index.commit();
    } else {
      index.rollback();
    }
  }
  ASSERT_GT(warm_hits, 0);
}

// Counting-sort candidate order == the stable_sort it replaced, on every
// waveguide of mapped and opened states.
TEST(FastpathCandidateOrder, CountingSortMatchesStableSort) {
  for (const int n : {16, 32}) {
    const Instance inst = make_instance(n, Traffic::all_to_all(n), false);
    const ring::Tour& tour = inst.ring.tour;
    MappingOptions mo;
    mo.max_wavelengths = n / 2;
    Mapping mapping = assign_wavelengths(tour, inst.traffic, inst.plan, mo);
    const ArcTable arcs(tour, inst.traffic);
    OccupancyIndex index(arcs, mapping);
    for (int w = 0; w < static_cast<int>(mapping.waveguides.size()); ++w) {
      std::vector<std::pair<int, NodeId>> expected;
      for (int pos = 0; pos < tour.size(); ++pos) {
        expected.emplace_back(index.passing_count(w, pos), tour.at(pos));
      }
      std::stable_sort(
          expected.begin(), expected.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      EXPECT_EQ(opening_candidate_order(index, tour, w), expected)
          << "waveguide " << w;
    }
  }
}

// Speculative candidate evaluation must be byte-identical at every thread
// count and to the non-speculating serial path. n=64 crosses the
// speculation size gate; the tight #wl cap forces real relocation work.
TEST(FastpathSpeculation, OpeningsDeterministicAcrossJobs) {
  const int n = 64;
  const Instance inst = make_instance(n, Traffic::all_to_all(n), false);
  MappingOptions mo;
  mo.max_wavelengths = n / 4;  // tight: candidates fail, memo + batches engage

  const auto run = [&](int jobs, bool speculate) {
    par::set_jobs(jobs);
    Mapping mapping =
        assign_wavelengths(inst.ring.tour, inst.traffic, inst.plan, mo);
    OpeningOptions oo;
    oo.speculate = speculate;
    const OpeningStats stats =
        create_openings(inst.ring.tour, inst.traffic, mapping, mo, oo);
    par::set_jobs(0);
    return std::make_pair(std::move(mapping), stats);
  };

  const auto [serial_map, serial_stats] = run(1, /*speculate=*/false);
  for (const int jobs : {1, 2, 8}) {
    const auto [spec_map, spec_stats] = run(jobs, /*speculate=*/true);
    EXPECT_EQ(spec_stats.relocated_signals, serial_stats.relocated_signals)
        << "jobs=" << jobs;
    EXPECT_EQ(spec_stats.extra_waveguides, serial_stats.extra_waveguides)
        << "jobs=" << jobs;
    expect_mappings_identical(spec_map, serial_map);
  }
}

// The memoized-skip counter: (a) it fires on workloads with repeated
// failing moving sets, (b) it is jobs-invariant (memo decisions replay in
// the serial consume order regardless of speculation), and (c) skipping
// does not change any outcome (covered by the determinism test above; here
// the serial-vs-speculative mapping equality is re-checked under obs).
TEST(FastpathMemo, MemoizedSkipsAreJobsInvariant) {
  const int n = 64;
  const Instance inst = make_instance(n, Traffic::all_to_all(n), false);
  MappingOptions mo;
  mo.max_wavelengths = n / 4;

  const auto run = [&](int jobs, bool speculate) {
    par::set_jobs(jobs);
    obs::Context ctx;
    long long memoized = 0;
    Mapping mapping;
    {
      obs::ScopedContext scope(ctx);
      mapping =
          assign_wavelengths(inst.ring.tour, inst.traffic, inst.plan, mo);
      OpeningOptions oo;
      oo.speculate = speculate;
      create_openings(inst.ring.tour, inst.traffic, mapping, mo, oo);
      memoized =
          ctx.registry().counter("mapping.candidates_memoized").value();
    }
    par::set_jobs(0);
    return std::make_pair(std::move(mapping), memoized);
  };

  const auto [serial_map, serial_memo] = run(1, /*speculate=*/false);
  ASSERT_GT(serial_memo, 0)
      << "workload must exercise the memoized-skip path";
  for (const int jobs : {2, 8}) {
    const auto [spec_map, spec_memo] = run(jobs, /*speculate=*/true);
    EXPECT_EQ(spec_memo, serial_memo) << "jobs=" << jobs;
    expect_mappings_identical(spec_map, serial_map);
  }
}

// The last-resort overflow path (relocation falls back onto freshly
// appended waveguides) under the fast paths: outcome must match the
// brute-force reference exactly. The very tight cap at dense random
// traffic makes overflow unavoidable.
TEST(FastpathOverflow, ExtraWaveguidePathMatchesReference) {
  const int n = 16;
  bool saw_overflow = false;
  for (const unsigned seed : {5u, 21u, 101u, 202u}) {
    const Traffic traffic = random_traffic(n, n * (n - 1) / 2, seed);
    const Instance inst = make_instance(n, traffic, false);
    MappingOptions mo;
    mo.max_wavelengths = 2;

    Mapping fast = assign_wavelengths(inst.ring.tour, inst.traffic,
                                      inst.plan, mo);
    const OpeningStats fs =
        create_openings(inst.ring.tour, inst.traffic, fast, mo);

    // Reference: same pipeline with speculation off at 1 job exercises the
    // serial transaction path; brute-force agreement of that path is
    // covered exhaustively by test_mapping_index. Here the two production
    // paths must agree on the overflow outcome.
    par::set_jobs(1);
    Mapping serial = assign_wavelengths(inst.ring.tour, inst.traffic,
                                        inst.plan, mo);
    OpeningOptions oo;
    oo.speculate = false;
    const OpeningStats ss =
        create_openings(inst.ring.tour, inst.traffic, serial, mo, oo);
    par::set_jobs(0);

    EXPECT_EQ(fs.relocated_signals, ss.relocated_signals) << "seed " << seed;
    EXPECT_EQ(fs.extra_waveguides, ss.extra_waveguides) << "seed " << seed;
    expect_mappings_identical(fast, serial);
    saw_overflow = saw_overflow || fs.extra_waveguides > 0;
  }
  EXPECT_TRUE(saw_overflow)
      << "no seed produced extra_waveguides > 0; tighten the cap";
}

}  // namespace
}  // namespace xring::mapping
