#include <gtest/gtest.h>

#include "phys/parameters.hpp"
#include "phys/units.hpp"

namespace xring::phys {
namespace {

TEST(Units, DbLinearRoundTrip) {
  for (const double db : {-40.0, -3.0103, 0.0, 3.0103, 10.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
  }
}

TEST(Units, KnownConversions) {
  EXPECT_NEAR(db_to_linear(-3.0103), 0.5, 1e-4);
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-9);
  EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_mw(-30.0), 1e-3, 1e-12);
  EXPECT_NEAR(mw_to_dbm(1.0), 0.0, 1e-12);
}

TEST(Units, LaserPowerFormula) {
  // P = 10^((il_w + S)/10) mW — paper Sec. II-B. With il 10 dB and
  // sensitivity -20 dBm: 10^(-1) = 0.1 mW.
  EXPECT_NEAR(laser_power_mw(10.0, -20.0), 0.1, 1e-9);
  // Monotone in the loss.
  EXPECT_GT(laser_power_mw(12.0, -20.0), laser_power_mw(10.0, -20.0));
  // 10 dB more loss costs exactly 10x power.
  EXPECT_NEAR(laser_power_mw(20.0, -20.0) / laser_power_mw(10.0, -20.0), 10.0,
              1e-9);
}

TEST(Parameters, RingSpacingFormula) {
  // Spacing = A1 + ceil(log2 N) * A2 (Sec. III-A/D).
  GeometryParams g;
  g.modulator_um = 50.0;
  g.splitter_um = 20.0;
  EXPECT_NEAR(g.ring_spacing_um(8), 50 + 3 * 20, 1e-9);
  EXPECT_NEAR(g.ring_spacing_um(16), 50 + 4 * 20, 1e-9);
  EXPECT_NEAR(g.ring_spacing_um(32), 50 + 5 * 20, 1e-9);
  // Non-powers of two round the level count up.
  EXPECT_NEAR(g.ring_spacing_um(9), 50 + 4 * 20, 1e-9);
}

TEST(Parameters, PresetsAreConsistent) {
  const Parameters p = Parameters::proton_plus();
  EXPECT_GT(p.loss.drop_db, p.loss.through_db);
  EXPECT_GT(p.loss.crossing_db, p.loss.through_db);
  EXPECT_GT(p.loss.propagation_db_per_mm, 0.0);
  const Parameters o = Parameters::oring();
  EXPECT_LT(o.crosstalk.crossing_db, 0.0);
  EXPECT_LT(o.crosstalk.mrr_through_db, 0.0);
  EXPECT_GT(o.loss.laser_wall_plug_efficiency, 0.0);
  EXPECT_LE(o.loss.laser_wall_plug_efficiency, 1.0);
}

}  // namespace
}  // namespace xring::phys
