#include <gtest/gtest.h>

#include "place/placer.hpp"
#include "xring/synthesizer.hpp"

namespace xring::place {
namespace {

std::vector<geom::Point> grid_slots(int rows, int cols, geom::Coord pitch) {
  std::vector<geom::Point> slots;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) slots.push_back({c * pitch, r * pitch});
  }
  return slots;
}

TEST(Placer, RejectsSlotCountMismatch) {
  EXPECT_THROW(optimize_placement(grid_slots(2, 2, 1000), 5,
                                  netlist::Traffic::all_to_all(5)),
               std::invalid_argument);
}

TEST(Placer, ResultIsAPermutation) {
  const auto slots = grid_slots(2, 4, 1000);
  const auto traffic = netlist::Traffic::permutation(8, 3);
  PlacementOptions opt;
  opt.iterations = 200;
  const PlacementResult r = optimize_placement(slots, 8, traffic, opt);
  std::vector<bool> used(8, false);
  for (const int s : r.node_slot) {
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 8);
    EXPECT_FALSE(used[s]);
    used[s] = true;
  }
  EXPECT_EQ(r.floorplan.size(), 8);
}

TEST(Placer, NeverWorseThanIdentity) {
  const auto slots = grid_slots(2, 4, 2000);
  for (const int shift : {1, 3}) {
    const auto traffic = netlist::Traffic::permutation(8, shift);
    PlacementOptions opt;
    opt.iterations = 400;
    const PlacementResult r = optimize_placement(slots, 8, traffic, opt);
    EXPECT_LE(r.final_cost_mm, r.initial_cost_mm + 1e-9) << "shift " << shift;
    EXPECT_NEAR(r.final_cost_mm,
                placement_cost_mm(r.floorplan, traffic), 1e-9);
  }
}

TEST(Placer, ImprovesAdversarialPermutationTraffic) {
  // Traffic i -> i+4 on 8 nodes: under identity placement the partners sit
  // across the ring; a good placement interleaves them.
  const auto slots = grid_slots(2, 4, 2000);
  const auto traffic = netlist::Traffic::permutation(8, 4);
  PlacementOptions opt;
  opt.iterations = 800;
  const PlacementResult r = optimize_placement(slots, 8, traffic, opt);
  EXPECT_LT(r.final_cost_mm, r.initial_cost_mm * 0.8);
}

TEST(Placer, DeterministicForFixedSeed) {
  const auto slots = grid_slots(2, 4, 2000);
  const auto traffic = netlist::Traffic::hotspot(8, 0);
  PlacementOptions opt;
  opt.iterations = 300;
  const PlacementResult a = optimize_placement(slots, 8, traffic, opt);
  const PlacementResult b = optimize_placement(slots, 8, traffic, opt);
  EXPECT_EQ(a.node_slot, b.node_slot);
  EXPECT_DOUBLE_EQ(a.final_cost_mm, b.final_cost_mm);
}

TEST(Placer, OptimizedFloorplanFeedsTheSynthesizer) {
  // End-to-end: place for the demand, then synthesize on the result.
  const auto slots = grid_slots(2, 4, 2000);
  const auto traffic = netlist::Traffic::permutation(8, 4);
  PlacementOptions opt;
  opt.iterations = 400;
  const PlacementResult placed = optimize_placement(slots, 8, traffic, opt);

  Synthesizer synth(placed.floorplan);
  SynthesisOptions so;
  so.traffic = traffic;
  const SynthesisResult r = synth.run(so);
  for (const auto& route : r.design.mapping.routes) {
    EXPECT_NE(route.kind, mapping::RouteKind::kUnrouted);
  }
  EXPECT_EQ(r.metrics.worst_crossings, 0);
}

}  // namespace
}  // namespace xring::place
