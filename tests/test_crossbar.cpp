#include <gtest/gtest.h>

#include "crossbar/physical.hpp"

namespace xring::crossbar {
namespace {

TEST(Topology, WavelengthBudgets) {
  EXPECT_EQ(LambdaRouter(8).wavelengths(), 8);
  EXPECT_EQ(LambdaRouter(16).wavelengths(), 16);
  EXPECT_EQ(Gwor(8).wavelengths(), 7);
  EXPECT_EQ(Light(16).wavelengths(), 15);
}

TEST(Topology, LambdaRouterIsPlanar) {
  const LambdaRouter t(16);
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      EXPECT_EQ(t.path(s, d).crossings, 0);
    }
  }
}

TEST(Topology, LambdaRouterDropsGrowWithRailDistance) {
  const LambdaRouter t(16);
  EXPECT_LT(t.path(0, 1).drops, t.path(0, 15).drops);
  EXPECT_EQ(t.path(0, 15).drops, 15);
}

TEST(Topology, GworHasCrossingsLightHasFewer) {
  const Gwor g(16);
  const Light l(16);
  int g_total = 0, l_total = 0;
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      g_total += g.path(s, d).crossings;
      l_total += l.path(s, d).crossings;
    }
  }
  EXPECT_GT(g_total, 0);
  EXPECT_LT(l_total, g_total);
}

TEST(Topology, LightMinimizesMrrPasses) {
  const LambdaRouter lam(16);
  const Light light(16);
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      EXPECT_LE(light.path(s, d).throughs + light.path(s, d).drops,
                lam.path(s, d).throughs + lam.path(s, d).drops);
    }
  }
}

TEST(Physical, AllPathsPositive) {
  const auto fp = netlist::Floorplan::standard(16);
  const auto params = phys::Parameters::proton_plus();
  const LambdaRouter topo(16);
  for (const SynthesisStyle style :
       {SynthesisStyle::kNaive, SynthesisStyle::kPlanarized,
        SynthesisStyle::kCompact}) {
    const PhysicalSynthesis ps(topo, fp, style, params);
    for (NodeId s = 0; s < 16; ++s) {
      for (NodeId d = 0; d < 16; ++d) {
        if (s == d) continue;
        const CrossbarPath p = ps.path(s, d);
        EXPECT_GT(p.length_mm, 0.0);
        EXPECT_GE(p.crossings, 0);
        EXPECT_GT(p.il_db, 0.0);
      }
    }
  }
}

TEST(Physical, NaiveHasMostCrossingsPlanarizedFewest) {
  const auto fp = netlist::Floorplan::standard(16);
  const auto params = phys::Parameters::proton_plus();
  const LambdaRouter topo(16);
  const auto naive =
      PhysicalSynthesis(topo, fp, SynthesisStyle::kNaive, params).evaluate();
  const auto planar =
      PhysicalSynthesis(topo, fp, SynthesisStyle::kPlanarized, params)
          .evaluate();
  EXPECT_GT(naive.worst_crossings, 4 * planar.worst_crossings);
}

TEST(Physical, PlanarizationTradesCrossingsForLength) {
  const auto fp = netlist::Floorplan::standard(16);
  const auto params = phys::Parameters::proton_plus();
  const LambdaRouter topo(16);
  const auto naive =
      PhysicalSynthesis(topo, fp, SynthesisStyle::kNaive, params).evaluate();
  const auto planar =
      PhysicalSynthesis(topo, fp, SynthesisStyle::kPlanarized, params)
          .evaluate();
  EXPECT_GT(planar.worst_path_mm, naive.worst_path_mm);
  EXPECT_LT(planar.il_worst_db, naive.il_worst_db);
}

TEST(Physical, TableOneOrderingHolds) {
  // The paper's Table I ordering at 16 nodes:
  // Proton+/λ >> PlanarONoC/λ > ToPro/Light.
  const auto fp = netlist::Floorplan::standard(16);
  const auto params = phys::Parameters::proton_plus();
  const LambdaRouter lam(16);
  const Light light(16);
  const auto proton =
      PhysicalSynthesis(lam, fp, SynthesisStyle::kNaive, params).evaluate();
  const auto planar =
      PhysicalSynthesis(lam, fp, SynthesisStyle::kPlanarized, params)
          .evaluate();
  const auto topro =
      PhysicalSynthesis(light, fp, SynthesisStyle::kCompact, params).evaluate();
  EXPECT_GT(proton.il_worst_db, planar.il_worst_db);
  EXPECT_GT(planar.il_worst_db, topro.il_worst_db);
}

TEST(Physical, MetricsComeFromWorstPath) {
  const auto fp = netlist::Floorplan::standard(8);
  const auto params = phys::Parameters::proton_plus();
  const Gwor topo(8);
  const PhysicalSynthesis ps(topo, fp, SynthesisStyle::kCompact, params);
  const CrossbarMetrics m = ps.evaluate();
  double max_il = 0;
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId d = 0; d < 8; ++d) {
      if (s != d) max_il = std::max(max_il, ps.path(s, d).il_db);
    }
  }
  EXPECT_DOUBLE_EQ(m.il_worst_db, max_il);
}

/// Crossbar worst-case loss grows super-linearly with network size in the
/// naive style (the scaling argument of the paper's introduction).
class CrossbarScaling : public ::testing::TestWithParam<int> {};

TEST_P(CrossbarScaling, NaiveWorseThanCompact) {
  const int n = GetParam();
  const auto fp = netlist::Floorplan::standard(n);
  const auto params = phys::Parameters::proton_plus();
  const LambdaRouter topo(n);
  const auto naive =
      PhysicalSynthesis(topo, fp, SynthesisStyle::kNaive, params).evaluate();
  const auto compact =
      PhysicalSynthesis(topo, fp, SynthesisStyle::kCompact, params).evaluate();
  EXPECT_GE(naive.il_worst_db, compact.il_worst_db);
  EXPECT_GE(naive.worst_crossings, compact.worst_crossings);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrossbarScaling, ::testing::Values(8, 16, 32));

}  // namespace
}  // namespace xring::crossbar
