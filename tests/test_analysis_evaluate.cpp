#include <gtest/gtest.h>

#include "analysis/evaluate.hpp"
#include "phys/units.hpp"
#include "xring/synthesizer.hpp"

namespace xring::analysis {
namespace {

SynthesisResult make(int n, bool pdn = true) {
  static std::vector<std::unique_ptr<netlist::Floorplan>> keep_alive;
  keep_alive.push_back(
      std::make_unique<netlist::Floorplan>(netlist::Floorplan::standard(n)));
  Synthesizer synth(*keep_alive.back());
  SynthesisOptions opt;
  opt.mapping.max_wavelengths = n;
  opt.build_pdn = pdn;
  return synth.run(opt);
}

TEST(Evaluate, WorstLossIsTheMaximum) {
  const auto r = make(16);
  double max_il = 0, max_star = 0;
  for (const SignalReport& s : r.metrics.signals) {
    max_il = std::max(max_il, s.il_db);
    max_star = std::max(max_star, s.il_star_db);
  }
  EXPECT_DOUBLE_EQ(r.metrics.il_worst_db, max_il);
  EXPECT_DOUBLE_EQ(r.metrics.il_star_worst_db, max_star);
}

TEST(Evaluate, WorstPathBelongsToWorstStarSignal) {
  const auto r = make(16);
  const SignalReport* worst = nullptr;
  for (const SignalReport& s : r.metrics.signals) {
    if (worst == nullptr || s.il_star_db > worst->il_star_db) worst = &s;
  }
  ASSERT_NE(worst, nullptr);
  EXPECT_DOUBLE_EQ(r.metrics.worst_path_mm, worst->path_mm);
  EXPECT_EQ(r.metrics.worst_crossings, worst->crossings);
}

TEST(Evaluate, LaserPowerFollowsTheFormula) {
  const auto r = make(8);
  // Reconstruct the per-wavelength laser powers and the total.
  const int wl_count = std::max(1, r.design.mapping.wavelengths_used);
  std::vector<double> laser(wl_count, 0.0);
  for (SignalId id = 0; id < r.design.traffic.size(); ++id) {
    const int wl = r.design.mapping.routes[id].wavelength;
    laser[wl] = std::max(
        laser[wl],
        phys::laser_power_mw(r.metrics.signals[id].il_db,
                             r.design.params.loss.receiver_sensitivity_dbm));
  }
  double total = 0;
  for (const double p : laser) total += p;
  EXPECT_NEAR(r.metrics.total_power_w,
              total / 1000.0 / r.design.params.loss.laser_wall_plug_efficiency,
              1e-9);
}

TEST(Evaluate, SignalPowerConsistentWithLaserAndLoss) {
  const auto r = make(8);
  for (const SignalReport& s : r.metrics.signals) {
    EXPECT_GT(s.signal_mw, 0.0);
    // Received power can never exceed any laser's emitted power.
    EXPECT_LT(s.signal_mw, 1e6);
  }
}

TEST(Evaluate, MorePdnLossMoreLaserPower) {
  const auto with_pdn = make(16, true);
  const auto without = make(16, false);
  EXPECT_GT(with_pdn.metrics.total_power_w, without.metrics.total_power_w);
  EXPECT_GT(with_pdn.metrics.il_worst_db, without.metrics.il_worst_db);
  // il* excludes the PDN: comparable between the two runs.
  EXPECT_NEAR(with_pdn.metrics.il_star_worst_db,
              without.metrics.il_star_worst_db, 0.5);
}

TEST(Evaluate, WavelengthCountsReported) {
  const auto r = make(16);
  EXPECT_GT(r.metrics.wavelengths, 0);
  EXPECT_LE(r.metrics.wavelengths, 16);
  EXPECT_EQ(r.metrics.waveguides,
            static_cast<int>(r.design.mapping.waveguides.size()));
  EXPECT_EQ(static_cast<int>(r.metrics.signals.size()), 16 * 15);
}

TEST(Evaluate, ReceiverSensitivityShiftsPowerNotSnr) {
  const auto fp = netlist::Floorplan::standard(8);
  Synthesizer synth(fp);
  SynthesisOptions a;
  a.mapping.max_wavelengths = 8;
  SynthesisOptions b = a;
  b.params.loss.receiver_sensitivity_dbm += 10.0;  // 10 dB less sensitive
  const auto ra = synth.run(a);
  const auto rb = synth.run(b);
  EXPECT_NEAR(rb.metrics.total_power_w / ra.metrics.total_power_w, 10.0, 1e-6);
}

TEST(Evaluate, LaserVectorExposed) {
  const auto r = make(8);
  ASSERT_EQ(static_cast<int>(r.metrics.laser_mw.size()),
            std::max(1, r.design.mapping.wavelengths_used));
  double total = 0;
  for (const double p : r.metrics.laser_mw) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(r.metrics.total_power_w,
              total / 1000.0 / r.design.params.loss.laser_wall_plug_efficiency,
              1e-12);
}

}  // namespace
}  // namespace xring::analysis
