// Scoped observability contexts: accessor routing and nesting, span/clock
// pinning across context switches, propagation through the shared thread
// pool (parallel_for, TaskGroup, nested loops, help-while-waiting), and the
// headline isolation guarantee — two concurrent syntheses on one pool
// record per-context metrics identical to the same synthesis run alone.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>

#include "obs/context.hpp"
#include "obs/events.hpp"
#include "obs/memprof.hpp"
#include "obs/obs.hpp"
#include "obs/runstore.hpp"
#include "obs/sampler.hpp"
#include "par/pool.hpp"
#include "xring/synthesizer.hpp"

namespace xring::obs {
namespace {

/// Installs a fresh *root* registry for one test so assertions about what
/// leaked to (or stayed out of) the root are exact, and restores the pool
/// to its default size on the way out.
class ContextFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_ = swap_registry(&root_);
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    swap_registry(prev_);
    par::set_jobs(0);
  }

  Registry root_;
  Registry* prev_ = nullptr;
};

using ContextRouting = ContextFixture;
using ContextPool = ContextFixture;
using ContextEvents = ContextFixture;
using ContextSampler = ContextFixture;

TEST_F(ContextRouting, AccessorsResolveInstalledContextFirst) {
  Context ctx;
  EXPECT_EQ(&registry(), &root_);
  {
    ScopedContext scope(ctx);
    EXPECT_EQ(current_context(), &ctx);
    EXPECT_EQ(&registry(), &ctx.registry());
    registry().counter("ctx.hits").add();
  }
  EXPECT_EQ(current_context(), nullptr);
  EXPECT_EQ(&registry(), &root_);
  EXPECT_EQ(ctx.registry().counters().at("ctx.hits"), 1);
  EXPECT_EQ(root_.counters().count("ctx.hits"), 0u);
}

TEST_F(ContextRouting, ScopedContextsNestAndRestoreInOrder) {
  Context outer, inner;
  {
    ScopedContext a(outer);
    {
      ScopedContext b(inner);
      EXPECT_EQ(current_context(), &inner);
      registry().counter("n").add();
    }
    EXPECT_EQ(current_context(), &outer);
    registry().counter("n").add();
  }
  EXPECT_EQ(current_context(), nullptr);
  EXPECT_EQ(outer.registry().counters().at("n"), 1);
  EXPECT_EQ(inner.registry().counters().at("n"), 1);
}

TEST_F(ContextRouting, ContextOverBorrowedRegistryRecordsThere) {
  Registry mine;
  Context ctx(&mine);
  {
    ScopedContext scope(ctx);
    registry().counter("borrowed").add(3);
  }
  EXPECT_EQ(mine.counters().at("borrowed"), 3);
}

TEST_F(ContextRouting, EnabledFlagIsPerContext) {
  set_enabled(false);  // root tracing off
  Context ctx;         // contexts start enabled
  EXPECT_FALSE(enabled());
  {
    ScopedContext scope(ctx);
    EXPECT_TRUE(enabled());
    ctx.set_enabled(false);
    EXPECT_FALSE(enabled());
    ctx.set_enabled(true);
    EXPECT_TRUE(enabled());
  }
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  {
    ScopedContext scope(ctx);
    ctx.set_enabled(false);
    // Root on, context off: the installed context's flag wins.
    EXPECT_FALSE(enabled());
  }
}

TEST_F(ContextRouting, SpanStraddlingAContextSwitchKeepsItsRegistry) {
  Context ctx;
  {
    // The span opens while ctx is installed and closes after the scope
    // ended: it must record into the registry it captured at construction,
    // not whatever the thread resolved to at destruction time.
    auto scope = std::make_unique<ScopedContext>(ctx);
    Span span("straddle");
    scope.reset();
    EXPECT_EQ(current_context(), nullptr);
  }
  EXPECT_EQ(ctx.registry().spans().size(), 1u);
  EXPECT_EQ(ctx.registry().spans()[0].name, "straddle");
  EXPECT_TRUE(root_.spans().empty());
}

TEST_F(ContextPool, ParallelForRecordsIntoSubmittersContext) {
  par::set_jobs(4);
  Context ctx;
  {
    ScopedContext scope(ctx);
    par::parallel_for(par::global_pool(), 0, 200,
                      [](long) { registry().counter("iters").add(); });
  }
  EXPECT_EQ(ctx.registry().counters().at("iters"), 200);
  EXPECT_EQ(root_.counters().count("iters"), 0u);
}

TEST_F(ContextPool, NestedParallelismAndTaskGroupsPropagate) {
  par::set_jobs(4);
  Context ctx;
  {
    ScopedContext scope(ctx);
    par::TaskGroup group(par::global_pool());
    for (int t = 0; t < 4; ++t) {
      group.run([] {
        par::parallel_for(par::global_pool(), 0, 25,
                          [](long) { registry().counter("nested").add(); });
      });
    }
    group.wait();
  }
  EXPECT_EQ(ctx.registry().counters().at("nested"), 4 * 25);
  EXPECT_EQ(root_.counters().count("nested"), 0u);
}

TEST_F(ContextPool, ConcurrentContextsStayDisjointOnOnePool) {
  // Two runs share the pool; blocked threads help with whichever tasks are
  // queued, including the other run's. Exact per-context totals prove every
  // task was charged to its submitter, whoever executed it.
  par::set_jobs(4);
  constexpr long kIters = 4000;
  Context a, b;
  std::thread ta([&] {
    ScopedContext scope(a);
    par::parallel_for(par::global_pool(), 0, kIters,
                      [](long) { registry().counter("mine").add(); });
  });
  std::thread tb([&] {
    ScopedContext scope(b);
    par::parallel_for(par::global_pool(), 0, kIters,
                      [](long) { registry().counter("mine").add(); });
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.registry().counters().at("mine"), kIters);
  EXPECT_EQ(b.registry().counters().at("mine"), kIters);
  EXPECT_EQ(root_.counters().count("mine"), 0u);
}

TEST_F(ContextEvents, EmitFollowsTheInstalledContext) {
  EventLog root_log;
  events::swap_log(&root_log);
  Context ctx;
  {
    ScopedContext scope(ctx);
    // A context without a sink drops events — it must not leak them into
    // the root log of some other run.
    EXPECT_FALSE(events::enabled());
    events::emit("dropped", {});
    EXPECT_EQ(root_log.size(), 0u);

    EventLog& mine = ctx.make_event_log();
    EXPECT_TRUE(events::enabled());
    events::emit("scoped", {{"v", 1.0}});
    EXPECT_EQ(mine.size(), 1u);
    EXPECT_EQ(root_log.size(), 0u);
  }
  events::emit("root", {});
  EXPECT_EQ(root_log.size(), 1u);
  EXPECT_EQ(ctx.event_log()->size(), 1u);
  events::swap_log(nullptr);
}

TEST_F(ContextEvents, ClocksArePinnedAtInstall) {
  // swap_log pins the then-current (root) registry...
  EventLog root_log;
  events::swap_log(&root_log);
  EXPECT_EQ(root_log.clock(), &root_);
  Registry other;
  Registry* prev = swap_registry(&other);
  events::emit("tick", {});  // still timestamped off root_'s epoch
  EXPECT_EQ(root_log.clock(), &root_);
  swap_registry(prev);
  events::swap_log(nullptr);

  // ...and a context pins its own registry into the logs it installs.
  Context ctx;
  EventLog& log = ctx.make_event_log();
  EXPECT_EQ(log.clock(), &ctx.registry());
  EventLog borrowed;
  ctx.set_event_log(&borrowed);
  EXPECT_EQ(borrowed.clock(), &ctx.registry());
}

TEST_F(ContextSampler, SamplerKeepsItsPinnedRegistryAcrossRootSwaps) {
  PhaseSampler sampler(nullptr, 500);
  sampler.start();  // pins the current root registry (root_)
  Registry other;
  Registry* prev = swap_registry(&other);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.stop();
  swap_registry(prev);
  EXPECT_EQ(other.series().count("mem.rss_bytes"), 0u);
  const auto series = root_.series();
  ASSERT_EQ(series.count("mem.rss_bytes"), 1u);
  EXPECT_FALSE(series.at("mem.rss_bytes").empty());
}

#if defined(XRING_PROFILE_ALLOC)
TEST_F(ContextRouting, AllocationDeltasChargeTheInstalledContextsSpan) {
  ASSERT_TRUE(memprof::alloc_tracking());
  Context ctx;
  {
    ScopedContext scope(ctx);
    Span span("alloc_here");
    volatile char* block = new char[1 << 20];
    block[0] = 1;
    delete[] block;
  }
  const auto spans = ctx.registry().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "alloc_here");
  EXPECT_GE(spans[0].alloc_bytes, 1 << 20);
  EXPECT_TRUE(root_.spans().empty());
}
#endif

// ---------------------------------------------------------------------------
// Whole-pipeline isolation: the acceptance test of the context layer.

/// The per-context metric view the repo's own CI gates exactly (rel
/// tolerance 0): quality-class keys of the lp/mapping/milp/ring
/// subsystems. Solver-internal trajectory counters, scheduling telemetry
/// (`par.*`, `milp.spec_*`), and time-like keys are excluded — the same
/// exclusions bench_compare applies.
std::map<std::string, double> quality_view(
    const std::map<std::string, double>& flat) {
  std::map<std::string, double> out;
  for (const auto& [name, value] : flat) {
    if (classify_metric(name) != MetricClass::kQuality) continue;
    if (name.compare(0, 3, "lp.") == 0 || name.compare(0, 8, "mapping.") == 0 ||
        name.compare(0, 5, "milp.") == 0 || name.compare(0, 5, "ring.") == 0) {
      out[name] = value;
    }
  }
  return out;
}

std::map<std::string, double> synthesize_scoped(int nodes) {
  Context ctx;
  ScopedContext scope(ctx);
  const auto fp = netlist::Floorplan::standard(nodes);
  const Synthesizer synth(fp);
  SynthesisOptions opt;
  opt.mapping.max_wavelengths = nodes;
  (void)synth.run(opt);
  return ctx.registry().flatten();
}

TEST(ObsContextSynthesis, ConcurrentRunsMatchSerialMetricsExactly) {
  par::set_jobs(4);
  // Reference: one synthesis with the pool to itself.
  const auto serial = quality_view(synthesize_scoped(8));
  ASSERT_FALSE(serial.empty());

  // Two identical syntheses at once, sharing the pool.
  Registry sentinel;
  Registry* prev = swap_registry(&sentinel);
  std::map<std::string, double> a, b;
  std::thread ta([&] { a = quality_view(synthesize_scoped(8)); });
  std::thread tb([&] { b = quality_view(synthesize_scoped(8)); });
  ta.join();
  tb.join();
  swap_registry(prev);
  par::set_jobs(0);

  // Bitwise-equal quality metrics: no lost updates, no cross-charging.
  EXPECT_EQ(a, serial);
  EXPECT_EQ(b, serial);
  // And nothing bled into the root registry while the runs were scoped.
  EXPECT_EQ(sentinel.counters().count("milp.solves"), 0u);
  EXPECT_TRUE(sentinel.spans().empty());
}

TEST(ObsContextSynthesis, PerContextCountersAreThreadCountInvariant) {
  std::map<std::string, double> by_jobs[3];
  const int jobs[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    par::set_jobs(jobs[i]);
    by_jobs[i] = synthesize_scoped(8);
  }
  par::set_jobs(0);
  EXPECT_EQ(quality_view(by_jobs[0]), quality_view(by_jobs[1]));
  EXPECT_EQ(quality_view(by_jobs[0]), quality_view(by_jobs[2]));
  // The scoped run records the solver layers into its own registry.
  EXPECT_GE(by_jobs[0].count("milp.solves"), 1u);
  EXPECT_EQ(by_jobs[0].count("span.synth.total_s"), 1u);
  bool has_lp = false;
  for (const auto& [name, value] : by_jobs[0]) {
    if (name.compare(0, 3, "lp.") == 0) has_lp = true;
  }
  EXPECT_TRUE(has_lp);
}

}  // namespace
}  // namespace xring::obs
