#include <gtest/gtest.h>

#include "geom/polyline.hpp"

namespace xring::geom {
namespace {

TEST(Polyline, ThroughPointsBuildsLRoutes) {
  const Polyline line = Polyline::through(
      {{0, 0}, {10, 0}, {10, 10}},
      {LOrder::kVerticalFirst, LOrder::kVerticalFirst});
  EXPECT_EQ(line.length(), 20);
  EXPECT_EQ(line.segments().size(), 2u);
}

TEST(Polyline, LengthSumsSegments) {
  Polyline line;
  line.append(Segment{{0, 0}, {5, 0}});
  line.append(Segment{{5, 0}, {5, 7}});
  EXPECT_EQ(line.length(), 12);
}

TEST(Polyline, CrossingsWithSegment) {
  Polyline line;
  line.append(Segment{{0, 0}, {10, 0}});
  line.append(Segment{{0, 4}, {10, 4}});
  const Segment cutter{{5, -2}, {5, 6}};
  EXPECT_EQ(line.crossings_with(cutter), 2);
  const Segment misses{{50, -2}, {50, 6}};
  EXPECT_EQ(line.crossings_with(misses), 0);
}

TEST(Polyline, CrossingsWithPolyline) {
  Polyline a;
  a.append(Segment{{0, 0}, {10, 0}});
  Polyline b;
  b.append(Segment{{5, -5}, {5, 5}});
  b.append(Segment{{7, -5}, {7, 5}});
  EXPECT_EQ(a.crossings_with(b), 2);
  EXPECT_EQ(b.crossings_with(a), 2);
}

TEST(Polyline, SelfCrossings) {
  // A figure-eight-ish rectilinear path crossing itself once.
  Polyline line;
  line.append(Segment{{0, 0}, {10, 0}});
  line.append(Segment{{10, 0}, {10, 5}});
  line.append(Segment{{10, 5}, {5, 5}});
  line.append(Segment{{5, 5}, {5, -5}});  // cuts the first segment
  EXPECT_EQ(line.self_crossings(), 1);

  Polyline square;
  square.append(Segment{{0, 0}, {10, 0}});
  square.append(Segment{{10, 0}, {10, 10}});
  square.append(Segment{{10, 10}, {0, 10}});
  square.append(Segment{{0, 10}, {0, 0}});
  EXPECT_EQ(square.self_crossings(), 0);
}

TEST(Polyline, AppendLRouteSkipsDegenerateLegs) {
  Polyline line;
  line.append(LRoute({0, 0}, {5, 0}, LOrder::kVerticalFirst));
  EXPECT_EQ(line.segments().size(), 1u);  // straight: one leg only
}

}  // namespace
}  // namespace xring::geom
