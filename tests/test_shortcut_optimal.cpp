#include <gtest/gtest.h>

#include "ring/builder.hpp"
#include "shortcut/shortcut.hpp"

namespace xring::shortcut {
namespace {

geom::Coord total_gain(const ShortcutPlan& plan) {
  geom::Coord sum = 0;
  for (const Shortcut& s : plan.shortcuts) sum += s.gain;
  return sum;
}

void expect_structurally_legal(const ShortcutPlan& plan,
                               const netlist::Floorplan& fp,
                               const ring::RingGeometry& ring,
                               const ShortcutOptions& opt) {
  std::vector<int> uses(fp.size(), 0);
  for (std::size_t i = 0; i < plan.shortcuts.size(); ++i) {
    const Shortcut& s = plan.shortcuts[i];
    uses[s.a]++;
    uses[s.b]++;
    const geom::LRoute chord(fp.position(s.a), fp.position(s.b), s.order);
    EXPECT_EQ(ring.polyline.crossings_with(chord), 0);
    if (s.crossing_partner >= 0) {
      EXPECT_EQ(plan.shortcuts[s.crossing_partner].crossing_partner,
                static_cast<int>(i));
      EXPECT_TRUE(s.crossing.has_value());
    }
  }
  for (const int u : uses) EXPECT_LE(u, opt.max_per_node);
}

TEST(OptimalShortcuts, NeverWorseThanGreedy) {
  for (const int n : {8, 16, 32}) {
    const auto fp = netlist::Floorplan::standard(n);
    const auto ring = ring::build_ring(fp).geometry;
    const ShortcutOptions opt;
    const ShortcutPlan greedy = build_shortcuts(ring, fp, opt);
    const ShortcutPlan ilp = optimal_shortcuts(ring, fp, opt);
    EXPECT_GE(total_gain(ilp), total_gain(greedy)) << n << " nodes";
    expect_structurally_legal(ilp, fp, ring, opt);
  }
}

TEST(OptimalShortcuts, MatchesGreedyOnEasyInstances) {
  // When no chords interact, greedy max-gain IS optimal.
  const auto fp = netlist::Floorplan::standard(8);
  const auto ring = ring::build_ring(fp).geometry;
  const ShortcutPlan greedy = build_shortcuts(ring, fp);
  const ShortcutPlan ilp = optimal_shortcuts(ring, fp);
  EXPECT_EQ(total_gain(greedy), total_gain(ilp));
}

TEST(OptimalShortcuts, RespectsCrossingBudgetZero) {
  const auto fp = netlist::Floorplan::ring_layout(3, 3, 1000);
  const auto ring = ring::build_ring(fp).geometry;
  ShortcutOptions opt;
  opt.max_crossing_partners = 0;
  const ShortcutPlan ilp = optimal_shortcuts(ring, fp, opt);
  for (const Shortcut& s : ilp.shortcuts) {
    EXPECT_EQ(s.crossing_partner, -1);
  }
  // With the budget, the Fig. 7 cross pair is allowed and gains more.
  ShortcutOptions allow;
  const ShortcutPlan with = optimal_shortcuts(ring, fp, allow);
  EXPECT_GE(total_gain(with), total_gain(ilp));
}

TEST(OptimalShortcuts, HonoursPerNodeBudget) {
  const auto fp = netlist::Floorplan::standard(32);
  const auto ring = ring::build_ring(fp).geometry;
  for (const int cap : {1, 2}) {
    ShortcutOptions opt;
    opt.max_per_node = cap;
    const ShortcutPlan plan = optimal_shortcuts(ring, fp, opt);
    expect_structurally_legal(plan, fp, ring, opt);
  }
}

TEST(OptimalShortcuts, DisabledReturnsEmpty) {
  const auto fp = netlist::Floorplan::standard(16);
  const auto ring = ring::build_ring(fp).geometry;
  ShortcutOptions opt;
  opt.enable = false;
  EXPECT_TRUE(optimal_shortcuts(ring, fp, opt).shortcuts.empty());
}

TEST(OptimalShortcuts, CseRoutesDerivedForCrossingPairs) {
  const auto fp = netlist::Floorplan::ring_layout(3, 3, 1000);
  const auto ring = ring::build_ring(fp).geometry;
  const ShortcutPlan plan = optimal_shortcuts(ring, fp);
  int crossed = 0;
  for (const Shortcut& s : plan.shortcuts) {
    if (s.crossing_partner >= 0) ++crossed;
  }
  EXPECT_EQ(plan.cse_routes.size(), static_cast<std::size_t>(crossed / 2) * 8);
}

TEST(CollectCandidates, SortedByGainAndAllPositive) {
  const auto fp = netlist::Floorplan::standard(16);
  const auto ring = ring::build_ring(fp).geometry;
  const auto candidates = collect_candidates(ring, fp);
  EXPECT_FALSE(candidates.empty());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_GT(candidates[i].gain, 0);
    EXPECT_FALSE(candidates[i].feasible_orders.empty());
    if (i > 0) EXPECT_GE(candidates[i - 1].gain, candidates[i].gain);
  }
}

}  // namespace
}  // namespace xring::shortcut
