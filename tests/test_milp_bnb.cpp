#include <gtest/gtest.h>

#include <numeric>

#include "milp/branch_and_bound.hpp"

namespace xring::milp {
namespace {

TEST(Model, RejectsUnknownVariableInConstraint) {
  Model m;
  m.add_binary(1.0);
  EXPECT_THROW(m.add_constraint({{5, 1.0}}, Sense::kLe, 1.0),
               std::out_of_range);
}

TEST(Model, BinaryBoundsClamped) {
  Model m;
  const int x = m.add_variable(VarType::kBinary, -3.0, 7.0, 0.0);
  EXPECT_EQ(m.lower(x), 0.0);
  EXPECT_EQ(m.upper(x), 1.0);
}

TEST(Bnb, PureLpPassesThrough) {
  // No binaries: the answer is the LP optimum.
  Model m;
  m.set_maximize(true);
  const int x = m.add_variable(VarType::kContinuous, 0, 10, 1.0);
  m.add_constraint({{x, 1.0}}, Sense::kLe, 6.5);
  const MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 6.5, 1e-6);
}

TEST(Bnb, KnapsackSmall) {
  // max 10a + 13b + 7c, 3a + 4b + 2c <= 6 → {a, c} = 17? Check: a+b: 7 <= 6
  // no; b+c: 6 <= 6 → 20. Optimum is {b, c} with value 20.
  Model m;
  m.set_maximize(true);
  const int a = m.add_binary(10), b = m.add_binary(13), c = m.add_binary(7);
  m.add_constraint({{a, 3.0}, {b, 4.0}, {c, 2.0}}, Sense::kLe, 6.0);
  const MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 20.0, 1e-6);
  EXPECT_NEAR(r.x[a], 0.0, 1e-6);
  EXPECT_NEAR(r.x[b], 1.0, 1e-6);
  EXPECT_NEAR(r.x[c], 1.0, 1e-6);
}

TEST(Bnb, InfeasibleIntegerProgram) {
  // x + y = 1 with x = y forces a fractional solution: integer-infeasible.
  Model m;
  const int x = m.add_binary(1.0);
  const int y = m.add_binary(1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEq, 1.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Sense::kEq, 0.0);
  EXPECT_EQ(solve(m).status, MipStatus::kInfeasible);
}

TEST(Bnb, WarmStartAcceptedWhenValid) {
  Model m;
  m.set_maximize(true);
  const int a = m.add_binary(5), b = m.add_binary(4);
  m.add_constraint({{a, 1.0}, {b, 1.0}}, Sense::kLe, 1.0);
  BnbOptions opt;
  opt.warm_start = std::vector<double>{0.0, 1.0};  // feasible, value 4
  const MipResult r = solve(m, opt);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-6);  // still finds the true optimum
}

TEST(Bnb, InvalidWarmStartIgnored) {
  Model m;
  m.set_maximize(true);
  const int a = m.add_binary(5), b = m.add_binary(4);
  m.add_constraint({{a, 1.0}, {b, 1.0}}, Sense::kLe, 1.0);
  BnbOptions opt;
  opt.warm_start = std::vector<double>{1.0, 1.0};  // violates the constraint
  const MipResult r = solve(m, opt);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-6);
}

TEST(Bnb, LazyConstraintsCutOffCandidates) {
  // max a + b with no explicit coupling; the lazy handler forbids a+b = 2,
  // emulating a separation oracle. Optimum becomes 1.
  Model m;
  m.set_maximize(true);
  const int a = m.add_binary(1), b = m.add_binary(1);
  BnbOptions opt;
  opt.lazy_handler = [&](const std::vector<double>& x) {
    std::vector<Constraint> cuts;
    if (x[a] > 0.5 && x[b] > 0.5) {
      cuts.push_back(Constraint{{{a, 1.0}, {b, 1.0}}, Sense::kLe, 1.0});
    }
    return cuts;
  };
  const MipResult r = solve(m, opt);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-6);
  EXPECT_GE(r.lazy_constraints_added, 1);
}

TEST(Bnb, LazyHandlerVetsWarmStartToo) {
  Model m;
  m.set_maximize(true);
  const int a = m.add_binary(1), b = m.add_binary(1);
  int handler_calls = 0;
  BnbOptions opt;
  opt.warm_start = std::vector<double>{1.0, 1.0};
  opt.lazy_handler = [&](const std::vector<double>& x) {
    ++handler_calls;
    std::vector<Constraint> cuts;
    if (x[a] > 0.5 && x[b] > 0.5) {
      cuts.push_back(Constraint{{{a, 1.0}, {b, 1.0}}, Sense::kLe, 1.0});
    }
    return cuts;
  };
  const MipResult r = solve(m, opt);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-6);
  EXPECT_GE(handler_calls, 2);  // once for the warm start, once per candidate
}

TEST(Bnb, EqualityPartitioning) {
  // Choose exactly 2 of 4 items minimizing cost.
  Model m;
  const double costs[4] = {3, 1, 4, 1.5};
  std::vector<int> vars;
  Terms sum;
  for (const double c : costs) {
    vars.push_back(m.add_binary(c));
    sum.emplace_back(vars.back(), 1.0);
  }
  m.add_constraint(sum, Sense::kEq, 2.0);
  const MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.5, 1e-6);
  EXPECT_NEAR(r.x[1] + r.x[3], 2.0, 1e-6);
}

TEST(Bnb, MixedIntegerContinuous) {
  // max 2x + y with x binary, y continuous in [0, 1.5], x + y <= 2.
  Model m;
  m.set_maximize(true);
  const int x = m.add_binary(2.0);
  const int y = m.add_variable(VarType::kContinuous, 0, 1.5, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 2.0);
  const MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 1.0, 1e-6);
  EXPECT_NEAR(r.x[y], 1.0, 1e-6);
  EXPECT_NEAR(r.objective, 3.0, 1e-6);
}

TEST(Bnb, NodeLimitReturnsIncumbentAsFeasible) {
  // A knapsack big enough to need branching, with node_limit 1: the warm
  // start survives as the reported feasible solution.
  Model m;
  m.set_maximize(true);
  std::vector<int> v;
  Terms cap;
  for (int i = 0; i < 12; ++i) {
    v.push_back(m.add_binary(i % 5 + 1));
    cap.emplace_back(v.back(), static_cast<double>(i % 3 + 1));
  }
  m.add_constraint(cap, Sense::kLe, 7.0);
  BnbOptions opt;
  opt.node_limit = 0;
  opt.warm_start = std::vector<double>(12, 0.0);
  const MipResult r = solve(m, opt);
  EXPECT_EQ(r.status, MipStatus::kFeasible);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

/// Parameterized property: covering problems min sum x_i, x_i + x_{i+1} >= 1
/// on a cycle of n nodes have optimum ceil(n/2).
class BnbCycleCover : public ::testing::TestWithParam<int> {};

TEST_P(BnbCycleCover, MatchesClosedForm) {
  const int n = GetParam();
  Model m;
  std::vector<int> x;
  for (int i = 0; i < n; ++i) x.push_back(m.add_binary(1.0));
  for (int i = 0; i < n; ++i) {
    m.add_constraint({{x[i], 1.0}, {x[(i + 1) % n], 1.0}}, Sense::kGe, 1.0);
  }
  const MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, (n + 1) / 2, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Cycles, BnbCycleCover,
                         ::testing::Values(3, 4, 5, 7, 10, 13));

}  // namespace
}  // namespace xring::milp
