// Differential testing of the sweep-style SegmentIndex against the
// all-pairs brute force built on the same exact predicate (geom::crosses):
// random dense axis-aligned sets, the degenerate families (collinear
// overlaps, shared endpoints, T-junctions, point segments), and parity with
// Polyline::crossings_with. The index must agree crossing for crossing —
// it only skips pairs the sweep coordinate already rules out.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "geom/sweep.hpp"

namespace xring::geom {
namespace {

Segment h(Coord x1, Coord x2, Coord y) { return {{x1, y}, {x2, y}}; }
Segment v(Coord x, Coord y1, Coord y2) { return {{x, y1}, {x, y2}}; }

int brute_count(const std::vector<Segment>& set, const Segment& q) {
  int n = 0;
  for (const Segment& s : set) {
    if (crosses(q, s)) ++n;
  }
  return n;
}

std::vector<int> brute_owners(const std::vector<Segment>& set,
                              const Segment& q) {
  std::vector<int> owners;
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (crosses(q, set[i])) owners.push_back(static_cast<int>(i));
  }
  return owners;
}

SegmentIndex build_index(const std::vector<Segment>& set) {
  SegmentIndex index;
  for (std::size_t i = 0; i < set.size(); ++i) {
    index.add(set[i], static_cast<int>(i));
  }
  index.build();
  return index;
}

void expect_matches_brute(const std::vector<Segment>& set,
                          const std::vector<Segment>& queries) {
  const SegmentIndex index = build_index(set);
  for (const Segment& q : queries) {
    EXPECT_EQ(index.count_crossings(q), brute_count(set, q));
    std::vector<int> owners;
    index.for_each_crossing(q, [&](int o) { owners.push_back(o); });
    std::sort(owners.begin(), owners.end());
    EXPECT_EQ(owners, brute_owners(set, q));
  }
}

TEST(SegmentIndex, RandomDenseSetsMatchBruteForce) {
  // A tight coordinate range forces plenty of crossings, endpoint touches
  // and exact coordinate ties.
  std::mt19937 rng(20240817);
  std::uniform_int_distribution<int> coord(0, 24);
  std::uniform_int_distribution<int> len(0, 12);
  for (int round = 0; round < 20; ++round) {
    std::vector<Segment> set;
    for (int i = 0; i < 60; ++i) {
      const Coord a = coord(rng), b = coord(rng), l = len(rng);
      set.push_back(i % 2 == 0 ? h(a, a + l, b) : v(a, b, b + l));
    }
    // Query both member segments (self pairs must contribute nothing) and
    // fresh random segments.
    std::vector<Segment> queries = set;
    for (int i = 0; i < 20; ++i) {
      const Coord a = coord(rng), b = coord(rng), l = len(rng);
      queries.push_back(i % 2 == 0 ? h(a, a + l, b) : v(a, b, b + l));
    }
    expect_matches_brute(set, queries);
  }
}

TEST(SegmentIndex, DegenerateFamilies) {
  const std::vector<Segment> set = {
      h(0, 10, 5),     // baseline horizontal
      h(2, 8, 5),      // collinear overlap with it
      h(10, 20, 5),    // shares endpoint (10,5) with the baseline
      v(5, 5, 12),     // T-junction: endpoint on the baseline's interior
      v(5, -4, 5),     // T-junction from below, endpoint touch
      v(0, 0, 10),     // endpoint touch at the baseline's left end
      {{7, 5}, {7, 5}},  // point segment ON the baseline
      {{3, 3}, {3, 3}},  // point segment off every segment
      v(7, 0, 10),     // true crossing of the baseline
  };
  std::vector<Segment> queries = set;
  queries.push_back(h(-5, 25, 5));   // collinear sweep across everything
  queries.push_back(v(10, 0, 10));   // through the shared endpoint column
  queries.push_back(h(0, 10, 0));    // touches verticals' endpoints
  queries.push_back({{5, 5}, {5, 5}});  // degenerate query
  expect_matches_brute(set, queries);

  // Sanity anchors, independent of the brute force: the only transversal
  // crossing of the baseline is the full-height vertical at x=7.
  const SegmentIndex index = build_index(set);
  EXPECT_EQ(index.count_crossings(h(0, 10, 5)), 1);
  EXPECT_EQ(index.count_crossings(Segment{{5, 5}, {5, 5}}), 0);
}

TEST(SegmentIndex, LRouteSelfQueryContributesNothing) {
  const LRoute route({0, 0}, {10, 10}, LOrder::kVerticalFirst);
  SegmentIndex index;
  index.add(route, 7);
  index.build();
  // The route's two legs meet at the bend — an endpoint touch, never a
  // crossing — so querying a route against an index containing itself adds
  // exactly zero.
  EXPECT_EQ(index.count_crossings(route), 0);
}

TEST(SegmentIndex, PolylineParity) {
  std::mt19937 rng(77);
  std::uniform_int_distribution<int> coord(0, 40);
  std::vector<Segment> segs;
  for (int i = 0; i < 50; ++i) {
    const Coord a = coord(rng), b = coord(rng), l = coord(rng) % 15;
    segs.push_back(i % 2 == 0 ? h(a, a + l, b) : v(a, b, b + l));
  }
  const Polyline poly(segs);
  const SegmentIndex index(poly);
  for (int i = 0; i < 30; ++i) {
    const LRoute chord({coord(rng), coord(rng)}, {coord(rng), coord(rng)},
                       i % 2 == 0 ? LOrder::kVerticalFirst
                                  : LOrder::kHorizontalFirst);
    EXPECT_EQ(index.count_crossings(chord), poly.crossings_with(chord));
  }
  EXPECT_EQ(index.count_crossings(poly), poly.crossings_with(poly));
}

}  // namespace
}  // namespace xring::geom
