#include <gtest/gtest.h>

#include "mapping/opening.hpp"
#include "pdn/pdn.hpp"
#include "ring/builder.hpp"

namespace xring::pdn {
namespace {

struct Fixture {
  explicit Fixture(int n)
      : fp(netlist::Floorplan::standard(n)),
        traffic(netlist::Traffic::all_to_all(n)),
        ring(ring::build_ring(fp).geometry),
        params(phys::Parameters::oring()) {
    mapping::MappingOptions mo;
    mo.max_wavelengths = n;
    map = mapping::assign_wavelengths(ring.tour, traffic, {}, mo);
    mapping::create_openings(ring.tour, traffic, map, mo);
  }
  netlist::Floorplan fp;
  netlist::Traffic traffic;
  ring::RingGeometry ring;
  phys::Parameters params;
  mapping::Mapping map;
};

TEST(SplitterStage, FiftyPercentPlusExcess) {
  phys::LossParams lp;
  lp.splitter_excess_db = 0.2;
  EXPECT_NEAR(splitter_stage_db(lp), 3.0103 + 0.2, 1e-3);
}

TEST(TreePdn, CrossingFreeByConstruction) {
  const Fixture f(16);
  const PdnResult pdn = tree_pdn(f.ring.tour, f.map,
                                 std::vector<bool>(16, false), f.params);
  EXPECT_EQ(pdn.total_crossings, 0);
  EXPECT_TRUE(pdn.taps.empty());
  for (const auto& per_wg : pdn.crossings_at) {
    for (const int c : per_wg) EXPECT_EQ(c, 0);
  }
}

TEST(TreePdn, FeedLossCoversSplitTree) {
  const Fixture f(8);
  const PdnResult pdn = tree_pdn(f.ring.tour, f.map,
                                 std::vector<bool>(8, false), f.params);
  const double stage = splitter_stage_db(f.params.loss);
  const int n = 8;
  const int tree_stages = 3;  // ceil(log2 8)
  for (std::size_t w = 0; w < f.map.waveguides.size(); ++w) {
    for (netlist::NodeId v = 0; v < n; ++v) {
      // At least the balanced-tree split, at most split + a perimeter of
      // propagation and the cross-waveguide stages.
      EXPECT_GE(pdn.ring_feed_db[w][v], tree_stages * stage - 1e-9);
      EXPECT_LT(pdn.ring_feed_db[w][v], (tree_stages + 6) * stage + 3.0);
    }
  }
}

TEST(TreePdn, ShortcutSendersPayOneExtraStage) {
  const Fixture f(16);
  std::vector<bool> has(16, false);
  has[3] = true;
  const PdnResult pdn =
      tree_pdn(f.ring.tour, f.map, has, f.params);
  const double stage = splitter_stage_db(f.params.loss);
  EXPECT_NEAR(pdn.shortcut_feed_db[3], pdn.ring_feed_db[0][3] + stage, 1e-9);
  EXPECT_LT(pdn.shortcut_feed_db[2], 0.0);  // no shortcut there
}

TEST(TreePdn, MoreWaveguidesCostTopStages) {
  // Compare the same network mapped with many vs few waveguides: per-sender
  // feed loss must grow with the cross-waveguide splitting depth.
  const auto fp = netlist::Floorplan::standard(16);
  const auto traffic = netlist::Traffic::all_to_all(16);
  const auto ring = ring::build_ring(fp).geometry;
  const auto params = phys::Parameters::oring();

  mapping::MappingOptions few;
  few.max_wavelengths = 16;
  mapping::Mapping m_few =
      mapping::assign_wavelengths(ring.tour, traffic, {}, few);
  mapping::MappingOptions many;
  many.max_wavelengths = 4;
  mapping::Mapping m_many =
      mapping::assign_wavelengths(ring.tour, traffic, {}, many);
  ASSERT_GT(m_many.waveguides.size(), m_few.waveguides.size());

  const auto pdn_few =
      tree_pdn(ring.tour, m_few, std::vector<bool>(16, false), params);
  const auto pdn_many =
      tree_pdn(ring.tour, m_many, std::vector<bool>(16, false), params);
  EXPECT_GT(pdn_many.ring_feed_db[0][0], pdn_few.ring_feed_db[0][0]);
}

TEST(CombPdn, RadialsCrossEveryRingButTheInnermost) {
  const Fixture f(16);
  const PdnResult pdn = comb_pdn(f.ring.tour, f.map, f.params);
  const int W = static_cast<int>(f.map.waveguides.size());
  ASSERT_GT(W, 1);
  // One bundled radial per node, crossing each ring level except ring 0.
  const int expected = 16 * (W - 1);
  EXPECT_EQ(pdn.total_crossings, expected);
  EXPECT_EQ(static_cast<int>(pdn.taps.size()), expected);
  for (netlist::NodeId v = 0; v < 16; ++v) {
    EXPECT_EQ(pdn.crossings_at[0][v], 0);
    for (int w = 1; w < W; ++w) EXPECT_EQ(pdn.crossings_at[w][v], 1);
  }
}

TEST(CombPdn, InnerWaveguidesPayMoreBranchCrossingLoss) {
  const Fixture f(16);
  const PdnResult pdn = comb_pdn(f.ring.tour, f.map, f.params);
  const int W = static_cast<int>(f.map.waveguides.size());
  ASSERT_GE(W, 2);
  // Same node, inner vs outer waveguide: the inner branch passed more
  // crossings and more radial length.
  for (netlist::NodeId v = 0; v < 16; ++v) {
    EXPECT_GT(pdn.ring_feed_db[0][v], pdn.ring_feed_db[W - 1][v]);
  }
}

TEST(CombPdn, TapAttenuationIsBelowFullFeedLoss) {
  const Fixture f(16);
  const PdnResult pdn = comb_pdn(f.ring.tour, f.map, f.params);
  for (const CrossingTap& tap : pdn.taps) {
    ASSERT_GE(tap.waveguide, 0);
    ASSERT_GE(tap.node, 0);
    EXPECT_GE(tap.attenuation_db, 0.0);
    // The leak happens before the branch finishes: its attenuation is no
    // more than the full feed loss of the innermost sender at that node.
    EXPECT_LE(tap.attenuation_db, pdn.ring_feed_db[0][tap.node] + 1e-9);
  }
}

TEST(CombPdn, NoShortcutFeeds) {
  const Fixture f(8);
  const PdnResult pdn = comb_pdn(f.ring.tour, f.map, f.params);
  for (const double v : pdn.shortcut_feed_db) EXPECT_LT(v, 0.0);
}

/// Tree PDN feed-loss growth must be logarithmic in N (balanced splitting):
/// doubling the network adds roughly one stage, not double the loss.
TEST(TreePdn, BalancedGrowth) {
  double feeds[3];
  int i = 0;
  for (const int n : {8, 16, 32}) {
    const Fixture f(n);
    const PdnResult pdn = tree_pdn(f.ring.tour, f.map,
                                   std::vector<bool>(n, false), f.params);
    feeds[i++] = pdn.ring_feed_db[0][0];
  }
  const double stage = splitter_stage_db(phys::Parameters::oring().loss);
  EXPECT_LT(feeds[1] - feeds[0], 4 * stage);
  EXPECT_LT(feeds[2] - feeds[1], 4 * stage);
}

}  // namespace
}  // namespace xring::pdn
