#include <gtest/gtest.h>

#include "lp/simplex.hpp"

namespace xring::lp {
namespace {

TEST(Simplex, TrivialBoundedMaximum) {
  // max x subject to x <= 3, x in [0, 10].
  Problem p;
  p.set_maximize(true);
  const int x = p.add_variable(0, 10, 1.0);
  p.add_constraint({{x, 1.0}}, Sense::kLe, 3.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
  EXPECT_NEAR(s.x[x], 3.0, 1e-7);
}

TEST(Simplex, BoundsAloneDecideOptimum) {
  // No constraints: optimum sits at a bound.
  Problem p;
  p.set_maximize(true);
  const int x = p.add_variable(1, 4, 2.0);
  const int y = p.add_variable(0, 3, -1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 4.0, 1e-7);
  EXPECT_NEAR(s.x[y], 0.0, 1e-7);
  EXPECT_NEAR(s.objective, 8.0, 1e-7);
}

TEST(Simplex, ClassicTwoVariableLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (the textbook problem;
  // optimum 36 at (2, 6)).
  Problem p;
  p.set_maximize(true);
  const int x = p.add_variable(0, kInfinity, 3.0);
  const int y = p.add_variable(0, kInfinity, 5.0);
  p.add_constraint({{x, 1.0}}, Sense::kLe, 4.0);
  p.add_constraint({{y, 2.0}}, Sense::kLe, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, Sense::kLe, 18.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-6);
  EXPECT_NEAR(s.x[x], 2.0, 1e-6);
  EXPECT_NEAR(s.x[y], 6.0, 1e-6);
}

TEST(Simplex, MinimizationWithGeConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1 → optimum at (4, 0)? No: with
  // x >= 1 and minimizing 2x + 3y the cheapest cover of x + y >= 4 uses
  // x alone: x = 4, y = 0, objective 8.
  Problem p;
  const int x = p.add_variable(1, kInfinity, 2.0);
  const int y = p.add_variable(0, kInfinity, 3.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGe, 4.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-6);
  EXPECT_NEAR(s.x[x], 4.0, 1e-6);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y s.t. x + 2y = 6, x - y = 0 → x = y = 2.
  Problem p;
  const int x = p.add_variable(0, kInfinity, 1.0);
  const int y = p.add_variable(0, kInfinity, 1.0);
  p.add_constraint({{x, 1.0}, {y, 2.0}}, Sense::kEq, 6.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, Sense::kEq, 0.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-6);
  EXPECT_NEAR(s.x[y], 2.0, 1e-6);
}

TEST(Simplex, DetectsInfeasibility) {
  Problem p;
  const int x = p.add_variable(0, 1, 1.0);
  p.add_constraint({{x, 1.0}}, Sense::kGe, 2.0);
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleEqualitySystem) {
  Problem p;
  const int x = p.add_variable(0, 10, 0.0);
  p.add_constraint({{x, 1.0}}, Sense::kEq, 3.0);
  p.add_constraint({{x, 1.0}}, Sense::kEq, 5.0);
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Problem p;
  p.set_maximize(true);
  const int x = p.add_variable(0, kInfinity, 1.0);
  p.add_constraint({{x, -1.0}}, Sense::kLe, 0.0);  // -x <= 0: no upper limit
  EXPECT_EQ(solve(p).status, Status::kUnbounded);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x with x in [-5, 5], x >= -3 → -3.
  Problem p;
  const int x = p.add_variable(-5, 5, 1.0);
  p.add_constraint({{x, 1.0}}, Sense::kGe, -3.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], -3.0, 1e-7);
}

TEST(Simplex, BoundFlipPath) {
  // Optimum requires a nonbasic variable to sit at its upper bound:
  // max x + y s.t. x + y <= 10, x in [0,1], y in [0,1] → (1,1).
  Problem p;
  p.set_maximize(true);
  const int x = p.add_variable(0, 1, 1.0);
  const int y = p.add_variable(0, 1, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 10.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Highly degenerate: many redundant constraints through the same vertex.
  Problem p;
  p.set_maximize(true);
  const int x = p.add_variable(0, kInfinity, 1.0);
  const int y = p.add_variable(0, kInfinity, 1.0);
  for (int k = 1; k <= 8; ++k) {
    p.add_constraint({{x, static_cast<double>(k)}, {y, static_cast<double>(k)}},
                     Sense::kLe, 4.0 * k);
  }
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-6);
}

TEST(Simplex, RejectsFreeVariables) {
  Problem p;
  p.add_variable(-kInfinity, kInfinity, 1.0);
  EXPECT_THROW(solve(p), std::invalid_argument);
}

TEST(Simplex, RejectsInvertedBounds) {
  Problem p;
  EXPECT_THROW(p.add_variable(2.0, 1.0, 0.0), std::invalid_argument);
}

TEST(Simplex, AccumulatesDuplicateTerms) {
  // Adding the same (row, var) twice accumulates: x + x = 2x <= 4 → x <= 2.
  Problem p;
  p.set_maximize(true);
  const int x = p.add_variable(0, 100, 1.0);
  const int row = p.add_constraint(Sense::kLe, 4.0);
  p.add_term(row, x, 1.0);
  p.add_term(row, x, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-7);
}

TEST(Simplex, DuplicateTermsCancelToZero) {
  // +1 then -1 on the same (row, var) accumulates to a zero coefficient:
  // the row must not restrict x at all.
  Problem p;
  p.set_maximize(true);
  const int x = p.add_variable(0, 7, 1.0);
  const int row = p.add_constraint(Sense::kLe, 1.0);
  p.add_term(row, x, 1.0);
  p.add_term(row, x, -1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 7.0, 1e-7);
}

TEST(Simplex, BealeCyclingExampleTerminates) {
  // Beale's classic cycling LP: the textbook Dantzig rule loops forever on
  // this degenerate vertex; the stall-triggered switch to Bland's rule must
  // terminate it at the optimum -0.05 (x1 = 1/25, x3 = 1).
  Problem p;
  const int x1 = p.add_variable(0, kInfinity, -0.75);
  const int x2 = p.add_variable(0, kInfinity, 150.0);
  const int x3 = p.add_variable(0, kInfinity, -0.02);
  const int x4 = p.add_variable(0, kInfinity, 6.0);
  p.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                   Sense::kLe, 0.0);
  p.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                   Sense::kLe, 0.0);
  p.add_constraint({{x3, 1.0}}, Sense::kLe, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-9);
}

TEST(Simplex, IllConditionedChainForcesRefactorization) {
  // A geometric chain x_i <= 1.5 x_{i-1} over 90 variables: the optimal
  // basis is triangular with entries spanning ~16 orders of magnitude, and
  // reaching it takes more pivots than the eta-file refactorization
  // interval — so the sparse kernel must refactorize at least once and
  // still land on the exact optimum sum_{i} 1.5^i.
  constexpr int n = 90;
  Problem p;
  p.set_maximize(true);
  std::vector<int> x(n);
  for (int i = 0; i < n; ++i) x[i] = p.add_variable(0, kInfinity, 1.0);
  p.add_constraint({{x[0], 1.0}}, Sense::kLe, 1.0);
  for (int i = 1; i < n; ++i) {
    p.add_constraint({{x[i], 1.0}, {x[i - 1], -1.5}}, Sense::kLe, 0.0);
  }
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  double expect = 0.0, v = 1.0;
  for (int i = 0; i < n; ++i) {
    expect += v;
    v *= 1.5;
  }
  EXPECT_NEAR(s.objective / expect, 1.0, 1e-9);
  EXPECT_GT(s.stats.refactorizations, 0);
}

/// Property sweep: transportation-style LPs with known optima. For a 1-D
/// assignment relaxation the LP optimum equals the greedy matching cost.
class SimplexAssignment : public ::testing::TestWithParam<int> {};

TEST_P(SimplexAssignment, RelaxedAssignmentIsIntegral) {
  const int n = GetParam();
  // min sum c_ij x_ij with doubly-stochastic constraints; c_ij = |i-j|.
  // The LP relaxation of assignment is integral; the optimum is 0 (identity).
  Problem p;
  std::vector<std::vector<int>> var(n, std::vector<int>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      var[i][j] = p.add_variable(0, 1, std::abs(i - j));
    }
  }
  for (int i = 0; i < n; ++i) {
    std::vector<std::pair<int, double>> row, col;
    for (int j = 0; j < n; ++j) {
      row.emplace_back(var[i][j], 1.0);
      col.emplace_back(var[j][i], 1.0);
    }
    p.add_constraint(row, Sense::kEq, 1.0);
    p.add_constraint(col, Sense::kEq, 1.0);
  }
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-6);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(s.x[var[i][i]], 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimplexAssignment,
                         ::testing::Values(2, 3, 5, 8, 12));

}  // namespace
}  // namespace xring::lp
