// Randomized property tests: deterministic LCG-driven instances cross-check
// the optimized implementations against brute force.

#include <gtest/gtest.h>

#include <cstdint>

#include "milp/branch_and_bound.hpp"
#include "ring/builder.hpp"

namespace xring {
namespace {

/// Deterministic 64-bit LCG so failures reproduce exactly.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed * 2862933555777941757ULL + 1) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 11;
  }
  geom::Coord coord(geom::Coord lo, geom::Coord hi) {
    return lo + static_cast<geom::Coord>(next() % (hi - lo + 1));
  }

 private:
  std::uint64_t state_;
};

// ---------------------------------------------------------------------------
// Geometry: crossing predicate vs dense point sampling.
// ---------------------------------------------------------------------------

/// Brute force: two axis-aligned segments cross transversally iff they are
/// perpendicular and some point strictly inside both exists. (Collinear
/// segments sharing interior points overlap — a different relation.)
/// Sampled on the integer grid, which is exact for axis-aligned geometry.
bool brute_force_cross(const geom::Segment& s, const geom::Segment& t) {
  const bool perpendicular = (s.horizontal() && t.vertical()) ||
                             (s.vertical() && t.horizontal());
  if (!perpendicular) return false;
  auto interior_points = [](const geom::Segment& seg) {
    std::vector<geom::Point> pts;
    const geom::Coord dx = seg.b.x > seg.a.x ? 1 : (seg.b.x < seg.a.x ? -1 : 0);
    const geom::Coord dy = seg.b.y > seg.a.y ? 1 : (seg.b.y < seg.a.y ? -1 : 0);
    geom::Point p = seg.a;
    while (p != seg.b) {
      p.x += dx;
      p.y += dy;
      if (p != seg.b) pts.push_back(p);
    }
    return pts;
  };
  for (const geom::Point& p : interior_points(s)) {
    for (const geom::Point& q : interior_points(t)) {
      if (p == q) return true;
    }
  }
  return false;
}

class SegmentCrossProperty : public ::testing::TestWithParam<int> {};

TEST_P(SegmentCrossProperty, MatchesBruteForce) {
  Lcg rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    auto random_segment = [&] {
      const geom::Point a{rng.coord(0, 12), rng.coord(0, 12)};
      geom::Point b = a;
      if (rng.next() % 2 == 0) {
        b.x = rng.coord(0, 12);
      } else {
        b.y = rng.coord(0, 12);
      }
      return geom::Segment{a, b};
    };
    const geom::Segment s = random_segment();
    const geom::Segment t = random_segment();
    EXPECT_EQ(geom::crosses(s, t), brute_force_cross(s, t))
        << "s=(" << s.a.x << "," << s.a.y << ")-(" << s.b.x << "," << s.b.y
        << ") t=(" << t.a.x << "," << t.a.y << ")-(" << t.b.x << "," << t.b.y
        << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentCrossProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// MILP: branch & bound vs exhaustive enumeration on random binary programs.
// ---------------------------------------------------------------------------

class BnbEnumerationProperty : public ::testing::TestWithParam<int> {};

TEST_P(BnbEnumerationProperty, MatchesExhaustiveOptimum) {
  Lcg rng(GetParam() * 977);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 6 + static_cast<int>(rng.next() % 5);  // 6..10 binaries
    milp::Model m;
    std::vector<double> obj(n);
    for (int v = 0; v < n; ++v) {
      obj[v] = static_cast<double>(rng.coord(-9, 9));
      m.add_binary(obj[v]);
    }
    const int rows = 2 + static_cast<int>(rng.next() % 4);
    std::vector<std::vector<double>> a(rows, std::vector<double>(n));
    std::vector<double> rhs(rows);
    for (int r = 0; r < rows; ++r) {
      milp::Terms terms;
      for (int v = 0; v < n; ++v) {
        a[r][v] = static_cast<double>(rng.coord(-4, 4));
        if (a[r][v] != 0) terms.emplace_back(v, a[r][v]);
      }
      rhs[r] = static_cast<double>(rng.coord(0, 10));
      m.add_constraint(terms, milp::Sense::kLe, rhs[r]);
    }

    // Exhaustive optimum (minimization).
    double best = 1e18;
    for (int mask = 0; mask < (1 << n); ++mask) {
      bool ok = true;
      for (int r = 0; r < rows && ok; ++r) {
        double lhs = 0;
        for (int v = 0; v < n; ++v) {
          if (mask & (1 << v)) lhs += a[r][v];
        }
        ok = lhs <= rhs[r] + 1e-9;
      }
      if (!ok) continue;
      double val = 0;
      for (int v = 0; v < n; ++v) {
        if (mask & (1 << v)) val += obj[v];
      }
      best = std::min(best, val);
    }

    const milp::MipResult r = milp::solve(m);
    if (best > 1e17) {
      EXPECT_EQ(r.status, milp::MipStatus::kInfeasible);
    } else {
      ASSERT_EQ(r.status, milp::MipStatus::kOptimal) << "trial " << trial;
      EXPECT_NEAR(r.objective, best, 1e-6) << "trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbEnumerationProperty,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Ring construction on random floorplans: structural invariants.
// ---------------------------------------------------------------------------

class RandomFloorplanProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomFloorplanProperty, RingIsAlwaysLegal) {
  Lcg rng(GetParam() * 31337);
  const int n = 5 + static_cast<int>(rng.next() % 8);  // 5..12 nodes
  std::vector<netlist::Node> nodes;
  std::vector<geom::Point> used;
  while (static_cast<int>(nodes.size()) < n) {
    const geom::Point p{rng.coord(0, 9) * 1000, rng.coord(0, 9) * 1000};
    // Distinct positions only.
    bool dup = false;
    for (const auto& q : used) dup |= q == p;
    if (dup) continue;
    used.push_back(p);
    nodes.push_back({0, p, ""});
  }
  const netlist::Floorplan fp(std::move(nodes), 10000, 10000);
  const ring::ConflictOracle oracle(fp);
  const ring::RingBuildResult r = ring::build_ring(fp, oracle, {});

  // A legal ring: visits everyone once, no conflicting edge pairs remain,
  // never longer than the heuristic alone.
  ASSERT_EQ(static_cast<int>(r.geometry.tour.order().size()), n);
  std::vector<bool> seen(fp.size(), false);
  for (const netlist::NodeId v : r.geometry.tour.order()) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  EXPECT_EQ(ring::tour_conflicts(r.geometry.tour.order(), oracle), 0);
  EXPECT_LE(r.geometry.tour.total_length(),
            ring::tour_length(ring::heuristic_tour(fp, oracle), fp));
  EXPECT_EQ(r.geometry.crossings, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFloorplanProperty,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace xring
