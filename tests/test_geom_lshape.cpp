#include <gtest/gtest.h>

#include "geom/lshape.hpp"

namespace xring::geom {
namespace {

TEST(LRoute, VerticalFirstGeometry) {
  const LRoute r({0, 0}, {4, 6}, LOrder::kVerticalFirst);
  EXPECT_EQ(r.bend(), (Point{0, 6}));
  ASSERT_EQ(r.segments().size(), 2u);
  EXPECT_EQ(r.segments()[0], (Segment{{0, 0}, {0, 6}}));
  EXPECT_EQ(r.segments()[1], (Segment{{0, 6}, {4, 6}}));
  EXPECT_EQ(r.length(), 10);
  EXPECT_FALSE(r.straight());
}

TEST(LRoute, HorizontalFirstGeometry) {
  const LRoute r({0, 0}, {4, 6}, LOrder::kHorizontalFirst);
  EXPECT_EQ(r.bend(), (Point{4, 0}));
  ASSERT_EQ(r.segments().size(), 2u);
  EXPECT_EQ(r.segments()[0], (Segment{{0, 0}, {4, 0}}));
  EXPECT_EQ(r.segments()[1], (Segment{{4, 0}, {4, 6}}));
}

TEST(LRoute, DegeneratesToStraight) {
  const LRoute r({0, 0}, {4, 0}, LOrder::kVerticalFirst);
  ASSERT_EQ(r.segments().size(), 1u);
  EXPECT_TRUE(r.straight());
  EXPECT_EQ(r.length(), 4);
  const LRoute point({2, 2}, {2, 2}, LOrder::kHorizontalFirst);
  EXPECT_TRUE(point.segments().empty());
  EXPECT_EQ(point.length(), 0);
}

TEST(LRoute, BothOptionsCoverBothOrders) {
  const auto opts = l_route_options({0, 0}, {3, 3});
  EXPECT_EQ(opts[0].order(), LOrder::kVerticalFirst);
  EXPECT_EQ(opts[1].order(), LOrder::kHorizontalFirst);
  EXPECT_EQ(opts[0].length(), opts[1].length());
}

TEST(LRouteCrossing, OppositeCornersCross) {
  // Two L-routes between opposite corners of a square: VF vs VF options
  // pass each other, but specific combinations cross.
  const LRoute a({0, 0}, {10, 10}, LOrder::kVerticalFirst);
  const LRoute b({0, 10}, {10, 0}, LOrder::kVerticalFirst);
  // a: (0,0)->(0,10)->(10,10); b: (0,10)->(0,0)->(10,0): collinear legs,
  // no transversal crossing.
  EXPECT_FALSE(routes_cross(a, b));
  const LRoute c({0, 10}, {10, 0}, LOrder::kHorizontalFirst);
  // c: (0,10)->(10,10)->(10,0): again parallel/touching, not crossing.
  EXPECT_FALSE(routes_cross(a, c));
}

TEST(LRouteCrossing, GenuineCross) {
  const LRoute a({0, 5}, {10, 5}, LOrder::kVerticalFirst);  // straight
  const LRoute b({5, 0}, {5, 10}, LOrder::kVerticalFirst);  // straight
  EXPECT_TRUE(routes_cross(a, b));
  EXPECT_EQ(crossing_count(a, b), 1);
}

TEST(LRouteCrossing, TwoCrossingsPossible) {
  // Two L-routes can cross twice: a's legs both cut through b.
  const LRoute a({0, 0}, {10, 10}, LOrder::kVerticalFirst);
  //   a: vertical x=0 from 0..10, horizontal y=10 from 0..10
  const LRoute b({-5, 5}, {5, 15}, LOrder::kHorizontalFirst);
  //   b: horizontal y=5 from -5..5, vertical x=5 from 5..15
  EXPECT_EQ(crossing_count(a, b), 2);
}

TEST(LRouteOverlap, CollinearLegsOverlap) {
  const LRoute a({0, 0}, {10, 0}, LOrder::kVerticalFirst);
  const LRoute b({5, 0}, {15, 0}, LOrder::kVerticalFirst);
  EXPECT_TRUE(routes_overlap(a, b));
  EXPECT_FALSE(routes_cross(a, b));
}

TEST(EdgesConflict, SharedEndpointNeverConflicts) {
  EXPECT_FALSE(edges_conflict({0, 0}, {10, 10}, {10, 10}, {20, 0}));
  EXPECT_FALSE(edges_conflict({0, 0}, {10, 10}, {0, 0}, {20, 0}));
}

TEST(EdgesConflict, InterleavedDiagonalsConflict) {
  // Endpoints interleave around a square so that every combination of
  // L-options crosses: the classic Fig. 6(d) situation.
  EXPECT_TRUE(edges_conflict({0, 5}, {10, 5}, {5, 0}, {5, 10}));
}

TEST(EdgesConflict, SeparatedEdgesDoNotConflict) {
  EXPECT_FALSE(edges_conflict({0, 0}, {1, 1}, {10, 10}, {11, 11}));
}

TEST(EdgesConflict, SameBoundingBoxButAvoidable) {
  // Diagonals of the same square: one can route "around" the other by
  // picking complementary L-orders (Fig. 6(c)).
  EXPECT_FALSE(edges_conflict({0, 0}, {10, 10}, {0, 10}, {10, 0}));
}

TEST(EdgesConflict, SymmetricInArguments) {
  const Point a1{0, 5}, a2{10, 5}, b1{5, 0}, b2{5, 10};
  EXPECT_EQ(edges_conflict(a1, a2, b1, b2), edges_conflict(b1, b2, a1, a2));
  EXPECT_EQ(edges_conflict(a1, a2, b1, b2), edges_conflict(a2, a1, b2, b1));
}

}  // namespace
}  // namespace xring::geom
