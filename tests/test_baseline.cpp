#include <gtest/gtest.h>

#include "baseline/oring.hpp"
#include "baseline/ornoc.hpp"

namespace xring::baseline {
namespace {

struct Fixture {
  explicit Fixture(int n)
      : fp(netlist::Floorplan::standard(n)), ring(ring::build_ring(fp)) {}
  netlist::Floorplan fp;
  ring::RingBuildResult ring;
};

TEST(Ornoc, SynthesisCompletesAndRoutesAll) {
  const Fixture f(16);
  OrnocOptions opt;
  opt.max_wavelengths = 16;
  const auto r = synthesize_ornoc(f.fp, f.ring, opt);
  EXPECT_EQ(static_cast<int>(r.design.mapping.routes.size()), 240);
  EXPECT_TRUE(r.design.has_pdn);
  EXPECT_TRUE(r.design.shortcuts.shortcuts.empty());
  EXPECT_GT(r.metrics.total_power_w, 0.0);
}

TEST(Ornoc, NoOpeningsNoShortcuts) {
  const Fixture f(8);
  OrnocOptions opt;
  opt.max_wavelengths = 8;
  const auto r = synthesize_ornoc(f.fp, f.ring, opt);
  for (const auto& w : r.design.mapping.waveguides) {
    EXPECT_EQ(w.opening, -1);
  }
}

TEST(Ornoc, CombPdnCrossesRings) {
  const Fixture f(16);
  OrnocOptions opt;
  opt.max_wavelengths = 16;
  const auto r = synthesize_ornoc(f.fp, f.ring, opt);
  EXPECT_GT(r.design.pdn.total_crossings, 0);
  EXPECT_FALSE(r.design.pdn.taps.empty());
}

TEST(Ornoc, WithoutPdnHasNoFeedLossAndNoTaps) {
  const Fixture f(8);
  OrnocOptions opt;
  opt.max_wavelengths = 8;
  opt.with_pdn = false;
  const auto r = synthesize_ornoc(f.fp, f.ring, opt);
  EXPECT_FALSE(r.design.has_pdn);
  EXPECT_NEAR(r.metrics.il_worst_db, r.metrics.il_star_worst_db, 1e-9);
}

TEST(Oring, SynthesisCompletesAndRoutesAll) {
  const Fixture f(16);
  OringOptions opt;
  opt.max_wavelengths = 16;
  const auto r = synthesize_oring(f.fp, f.ring, opt);
  EXPECT_EQ(static_cast<int>(r.design.mapping.routes.size()), 240);
  for (const auto& route : r.design.mapping.routes) {
    EXPECT_TRUE(route.kind == mapping::RouteKind::kRingCw ||
                route.kind == mapping::RouteKind::kRingCcw);
  }
}

TEST(Oring, ShorterDirectionOnly) {
  // ORing (unlike ORNoC) maps every signal in its shorter direction.
  const Fixture f(16);
  OringOptions opt;
  opt.max_wavelengths = 16;
  const auto r = synthesize_oring(f.fp, f.ring, opt);
  const auto& tour = r.design.ring.tour;
  for (const auto& sig : r.design.traffic.signals()) {
    const auto& route = r.design.mapping.routes[sig.id];
    const geom::Coord cw = tour.arc_length_cw(sig.src, sig.dst);
    const geom::Coord ccw = tour.arc_length_ccw(sig.src, sig.dst);
    if (route.kind == mapping::RouteKind::kRingCw) {
      EXPECT_LE(cw, ccw);
    } else {
      EXPECT_LE(ccw, cw);
    }
  }
}

TEST(Baselines, OrnocLongWayRoutingCostsCapacity) {
  // ORNoC fills existing slots even via the long direction; those long arcs
  // consume more (waveguide, λ) capacity overall, so it never needs fewer
  // waveguides than the shortest-direction FFD of ORing at the same cap.
  const Fixture f(16);
  OrnocOptions oo;
  oo.max_wavelengths = 16;
  OringOptions go;
  go.max_wavelengths = 16;
  const auto ornoc = synthesize_ornoc(f.fp, f.ring, oo);
  const auto oring = synthesize_oring(f.fp, f.ring, go);
  EXPECT_GE(ornoc.design.mapping.waveguides.size(),
            oring.design.mapping.waveguides.size());
}

TEST(Baselines, OrnocWorstPathLongerThanOring) {
  // The price of packing: ORNoC's worst-case detours (paper Table II:
  // L = 32 mm vs ORing's ~16 mm at 16 nodes).
  const Fixture f(16);
  OrnocOptions oo;
  oo.max_wavelengths = 16;
  OringOptions go;
  go.max_wavelengths = 16;
  const auto ornoc = synthesize_ornoc(f.fp, f.ring, oo);
  const auto oring = synthesize_oring(f.fp, f.ring, go);
  EXPECT_GT(ornoc.metrics.worst_path_mm, oring.metrics.worst_path_mm);
}

TEST(Baselines, BothSufferWidespreadNoiseWithPdn) {
  const Fixture f(16);
  OrnocOptions oo;
  oo.max_wavelengths = 16;
  OringOptions go;
  go.max_wavelengths = 16;
  const auto ornoc = synthesize_ornoc(f.fp, f.ring, oo);
  const auto oring = synthesize_oring(f.fp, f.ring, go);
  EXPECT_GT(ornoc.metrics.noisy_signals, 100);
  EXPECT_GT(oring.metrics.noisy_signals, 100);
}

}  // namespace
}  // namespace xring::baseline
