// xring — command-line front end for the synthesis library.
//
//   xring synth [options]        synthesize a router and print its report
//   xring verify [options]       synthesize, then run the design-rule check
//   xring floorplan [options]    emit a standard floorplan file
//
// synth options:
//   --floorplan FILE   load node placement from FILE (see netlist/io.hpp)
//   --nodes N          use the standard N-node floorplan (8/16/32)
//   --wl N             wavelength cap per ring waveguide (default: #nodes)
//   --jobs N           worker threads for the parallel substrate (default:
//                      the XRING_JOBS env var, then hardware concurrency);
//                      results are identical at every thread count
//   --traffic KIND     all2all | permutation | hotspot | bitrev
//   --params FILE      load device parameters (see phys/parameters_io.hpp)
//   --no-pdn           skip Step 4
//   --no-shortcuts     skip Step 2
//   --milp-budget SEC  budgeted Step 1: replace the exact ring MILP with the
//                      large-neighbourhood search (exact MILP repairs on
//                      tour windows) under a SEC-second budget, reporting a
//                      certified optimality gap; deterministic for a fixed
//                      seed and window whenever the repair schedule
//                      completes inside the budget
//   --comb-pdn         use the baseline crossing PDN instead of the tree
//   --svg FILE         write the layout view to FILE
//   --csv              print the per-signal report as CSV
//   --report           print the full design report instead of the summary
//   --trace FILE       record a Chrome trace_event JSON of the run (load it
//                      at chrome://tracing or ui.perfetto.dev); spans cover
//                      synth > ring_construction > milp.solve > lp.solve,
//                      plus shortcuts, mapping, opening, pdn, evaluate
//   --metrics FILE     write the flat {name: value} metrics JSON (solver
//                      node/cut/pivot counts, mapping stats, per-step wall
//                      times); a .csv extension (case-insensitive) selects
//                      the CSV exporter
//   --report-html FILE write the self-contained HTML run report (span
//                      timeline, diagnostics, MILP convergence, per-signal
//                      loss waterfall, crosstalk aggressor matrix, metrics)
//   --report-json FILE the same run report as machine-readable JSON
//   --profile FILE     run the phase sampler and write folded-stack
//                      (collapsed) output for flamegraph.pl / speedscope;
//                      also feeds the run report's "Memory by phase" table
//                      with sampled RSS per stage
//   --events FILE      write the solver progress telemetry (B&B incumbent/
//                      bound/gap/open-node records, LP refactorization and
//                      eta-growth events) as JSON lines
//   --progress         mirror the solver telemetry as a throttled one-line
//                      stderr progress display
//   --run-dir DIR      place every artifact of this run under DIR (created
//                      if missing) with default names — trace.json,
//                      metrics.json, events.jsonl, profile.folded,
//                      report.html, report.json — and record DIR/run.json
//                      (metrics snapshot + environment + span tree) plus an
//                      append-only index line in DIR/../index.jsonl, the
//                      store layout `xring_runs list|diff|aggregate` reads.
//                      Explicit artifact flags win over the defaults.
//
// floorplan options:
//   --nodes N          standard size (8/16/32)
//   --out FILE         output path (default: stdout)

#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "analysis/latency.hpp"
#include "netlist/io.hpp"
#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/runstore.hpp"
#include "obs/sampler.hpp"
#include "par/pool.hpp"
#include "phys/parameters_io.hpp"
#include "report/design_report.hpp"
#include "report/run_report.hpp"
#include "report/table.hpp"
#include "verify/drc.hpp"
#include "viz/svg.hpp"
#include "xring/synthesizer.hpp"

namespace {

using namespace xring;

/// Tiny flag parser: --key value and --key (boolean) styles.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) positional_.emplace_back(argv[i]);
  }

  std::string value(const std::string& key, const std::string& fallback = "") {
    for (std::size_t i = 0; i + 1 < positional_.size(); ++i) {
      if (positional_[i] == key) {
        used_[i] = used_[i + 1] = true;
        return positional_[i + 1];
      }
    }
    return fallback;
  }

  bool flag(const std::string& key) {
    for (std::size_t i = 0; i < positional_.size(); ++i) {
      if (positional_[i] == key) {
        used_[i] = true;
        return true;
      }
    }
    return false;
  }

  bool report_unused() const {
    bool ok = true;
    for (std::size_t i = 0; i < positional_.size(); ++i) {
      if (!used_.count(i)) {
        std::fprintf(stderr, "unknown argument: %s\n", positional_[i].c_str());
        ok = false;
      }
    }
    return ok;
  }

 private:
  std::vector<std::string> positional_;
  std::map<std::size_t, bool> used_;
};

/// True when `s` ends in `suffix`, compared case-insensitively — users write
/// metrics.CSV as readily as metrics.csv.
bool has_suffix_nocase(const std::string& s, const std::string& suffix) {
  if (s.size() < suffix.size()) return false;
  const std::size_t off = s.size() - suffix.size();
  for (std::size_t i = 0; i < suffix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[off + i])) !=
        std::tolower(static_cast<unsigned char>(suffix[i]))) {
      return false;
    }
  }
  return true;
}

netlist::Traffic make_traffic(const std::string& kind, int nodes) {
  if (kind == "all2all" || kind.empty()) {
    return netlist::Traffic::all_to_all(nodes);
  }
  if (kind == "permutation") return netlist::Traffic::permutation(nodes);
  if (kind == "hotspot") return netlist::Traffic::hotspot(nodes, 0);
  if (kind == "bitrev") return netlist::Traffic::bit_reversal(nodes);
  throw std::invalid_argument("unknown traffic kind: " + kind);
}

int cmd_synth(Args& args) {
  netlist::Floorplan fp;
  const std::string file = args.value("--floorplan");
  if (!file.empty()) {
    fp = netlist::load_floorplan(file);
  } else {
    fp = netlist::Floorplan::standard(std::stoi(args.value("--nodes", "16")));
  }

  const std::string jobs = args.value("--jobs");
  if (!jobs.empty()) par::set_jobs(std::stoi(jobs));

  SynthesisOptions opt;
  const std::string params_file = args.value("--params");
  if (!params_file.empty()) {
    opt.params = phys::load_parameters(params_file, opt.params);
  }
  opt.mapping.max_wavelengths =
      std::stoi(args.value("--wl", std::to_string(fp.size())));
  opt.build_pdn = !args.flag("--no-pdn");
  opt.shortcuts.enable = !args.flag("--no-shortcuts");
  // Opt-in budgeted Step 1: swap the exact ring MILP for the LNS with a
  // certified gap (ring/builder.hpp), keeping everything downstream as is.
  const std::string milp_budget = args.value("--milp-budget");
  if (!milp_budget.empty()) {
    opt.ring.lns_budget_seconds = std::stod(milp_budget);
  }
  if (args.flag("--comb-pdn")) {
    opt.pdn_style = SynthesisOptions::PdnStyle::kComb;
  }
  const std::string traffic_kind = args.value("--traffic", "all2all");
  opt.traffic = make_traffic(traffic_kind, fp.size());
  const std::string svg = args.value("--svg");
  const bool csv = args.flag("--csv");
  const bool full_report = args.flag("--report");
  std::string trace_file = args.value("--trace");
  std::string metrics_file = args.value("--metrics");
  std::string report_html = args.value("--report-html");
  std::string report_json = args.value("--report-json");
  std::string profile_file = args.value("--profile");
  std::string events_file = args.value("--events");
  const bool progress = args.flag("--progress");
  std::string run_dir = args.value("--run-dir");
  if (!args.report_unused()) return 2;

  // --run-dir DIR gathers the whole artifact set under one per-run
  // directory with default names; an explicit artifact flag keeps its path.
  while (run_dir.size() > 1 && run_dir.back() == '/') run_dir.pop_back();
  if (!run_dir.empty()) {
    namespace fs = std::filesystem;
    fs::create_directories(run_dir);
    const auto under = [&](const char* name) {
      return (fs::path(run_dir) / name).string();
    };
    if (trace_file.empty()) trace_file = under("trace.json");
    if (metrics_file.empty()) metrics_file = under("metrics.json");
    if (events_file.empty()) events_file = under("events.jsonl");
    if (profile_file.empty()) profile_file = under("profile.folded");
    if (report_html.empty()) report_html = under("report.html");
    if (report_json.empty()) report_json = under("report.json");
  }

  if (!trace_file.empty() || !metrics_file.empty() || !report_html.empty() ||
      !report_json.empty() || !profile_file.empty() || !events_file.empty() ||
      progress) {
    obs::registry().reset();
    obs::set_enabled(true);
  }

  // Profiling/telemetry sinks live for exactly the synthesis call: the
  // sampler thread stops (and the event log uninstalls) before any artifact
  // is written, so the files capture a complete, quiescent run.
  obs::PhaseSampler sampler;
  if (!profile_file.empty()) sampler.start();
  obs::EventLog events;
  if (!events_file.empty() || progress) {
    if (progress) events.enable_progress(stderr);
    obs::events::swap_log(&events);
  }

  const Synthesizer synth(fp);
  const SynthesisResult r = synth.run(opt);

  obs::events::swap_log(nullptr);
  if (progress) events.finish_progress();
  sampler.stop();

  // Artifact paths are collected and printed together once the run report
  // ends, so they are easy to find after the (long) textual output.
  std::vector<std::pair<std::string, std::string>> artifacts;
  if (!trace_file.empty()) {
    obs::write_trace_json(trace_file);
    artifacts.emplace_back("trace", trace_file);
  }
  if (!metrics_file.empty()) {
    if (has_suffix_nocase(metrics_file, ".csv")) {
      obs::write_metrics_csv(metrics_file);
    } else {
      obs::write_metrics_json(metrics_file);
    }
    artifacts.emplace_back("metrics", metrics_file);
  }
  if (!profile_file.empty()) {
    sampler.write_folded(profile_file);
    artifacts.emplace_back("profile (folded stacks)", profile_file);
  }
  if (!events_file.empty()) {
    events.write(events_file);
    artifacts.emplace_back("events (jsonl)", events_file);
  }
  report::RunReportOptions report_opt;
  report_opt.title = "xring synth (" + std::to_string(fp.size()) + " nodes)";
  if (!report_html.empty()) {
    report::write_run_report_html(report_html, obs::registry(), &r.design,
                                  &r.metrics, report_opt);
    artifacts.emplace_back("run report (html)", report_html);
  }
  if (!report_json.empty()) {
    report::write_run_report_json(report_json, obs::registry(), &r.design,
                                  &r.metrics, report_opt);
    artifacts.emplace_back("run report (json)", report_json);
  }
  const analysis::LatencyReport latency = analysis::compute_latency(r.metrics);

  if (full_report) {
    std::fputs(report::design_report(r.design, r.metrics).c_str(), stdout);
  } else if (csv) {
    report::Table t({"signal", "src", "dst", "route", "wavelength",
                     "il_db", "il_star_db", "path_mm", "crossings", "snr_db"});
    for (std::size_t i = 0; i < r.metrics.signals.size(); ++i) {
      const auto& sig = r.design.traffic.signal(static_cast<int>(i));
      const auto& rep = r.metrics.signals[i];
      const auto kind = r.design.mapping.routes[i].kind;
      const char* route =
          kind == mapping::RouteKind::kShortcut  ? "shortcut"
          : kind == mapping::RouteKind::kCse     ? "cse"
          : kind == mapping::RouteKind::kRingCw  ? "ring-cw"
          : kind == mapping::RouteKind::kRingCcw ? "ring-ccw"
                                                 : "unrouted";
      t.add_row({std::to_string(i), fp.node(sig.src).name,
                 fp.node(sig.dst).name, route,
                 std::to_string(r.design.mapping.routes[i].wavelength),
                 report::num(rep.il_db, 3), report::num(rep.il_star_db, 3),
                 report::num(rep.path_mm, 3), std::to_string(rep.crossings),
                 report::snr(rep.snr_db)});
    }
    std::fputs(t.to_csv().c_str(), stdout);
  } else {
    std::printf("nodes            : %d\n", fp.size());
    std::printf("signals          : %d\n", r.design.traffic.size());
    std::printf("ring length      : %.1f mm (%d crossings)\n",
                r.design.ring.tour.total_length() / 1000.0,
                r.design.ring.crossings);
    std::printf("shortcuts        : %zu\n", r.design.shortcuts.shortcuts.size());
    std::printf("ring waveguides  : %d\n", r.metrics.waveguides);
    std::printf("wavelengths      : %d\n", r.metrics.wavelengths);
    std::printf("worst loss       : %.2f dB (%.2f dB excl. PDN)\n",
                r.metrics.il_worst_db, r.metrics.il_star_worst_db);
    std::printf("laser power      : %.3f W\n", r.metrics.total_power_w);
    std::printf("noisy signals    : %d (worst SNR %s dB)\n",
                r.metrics.noisy_signals,
                report::snr(r.metrics.snr_worst_db).c_str());
    std::printf("worst latency    : %.1f ps (mean %.1f ps)\n",
                latency.worst_ps, latency.mean_ps);
    std::printf("threads          : %d\n", par::effective_jobs());
    std::printf("synthesis time   : %.3f s\n", r.seconds);
  }

  if (!svg.empty()) {
    viz::save_svg(r.design, svg);
    artifacts.emplace_back("layout (svg)", svg);
  }
  if (!run_dir.empty()) {
    namespace fs = std::filesystem;
    // DIR is the run directory; its parent is the store root that holds the
    // shared index.jsonl, so sibling --run-dir runs land in one store.
    const fs::path rd(run_dir);
    obs::RunStore store(rd.has_parent_path() ? rd.parent_path().string()
                                             : std::string("."));
    // The resolved configuration, canonically ordered: two runs hash equal
    // exactly when they synthesize the same problem the same way.
    std::ostringstream cfg;
    cfg << "floorplan=" << file << ";nodes=" << fp.size()
        << ";wl=" << opt.mapping.max_wavelengths << ";traffic=" << traffic_kind
        << ";params=" << params_file << ";pdn=" << (opt.build_pdn ? 1 : 0)
        << ";shortcuts=" << (opt.shortcuts.enable ? 1 : 0) << ";pdn_style="
        << (opt.pdn_style == SynthesisOptions::PdnStyle::kComb ? "comb"
                                                               : "tree");
    obs::RunRecordOptions rec;
    rec.id = rd.filename().string();
    rec.title = report_opt.title;
    rec.extra_environment = {
        {"command", "synth"},
        {"jobs", std::to_string(par::effective_jobs())},
        {"hardware_concurrency", std::to_string(par::hardware_jobs())},
        {"config_hash", obs::config_hash(cfg.str())},
    };
    rec.artifacts = artifacts;
    store.record(obs::registry(), rec);
    artifacts.emplace_back("run record (json)",
                           (rd / "run.json").string());
  }
  for (const auto& [kind, path] : artifacts) {
    std::fprintf(stderr, "%s written to %s\n", kind.c_str(), path.c_str());
  }
  return 0;
}

int cmd_verify(Args& args) {
  netlist::Floorplan fp;
  const std::string file = args.value("--floorplan");
  if (!file.empty()) {
    fp = netlist::load_floorplan(file);
  } else {
    fp = netlist::Floorplan::standard(std::stoi(args.value("--nodes", "16")));
  }
  SynthesisOptions opt;
  opt.mapping.max_wavelengths =
      std::stoi(args.value("--wl", std::to_string(fp.size())));
  if (!args.report_unused()) return 2;

  const Synthesizer synth(fp);
  const SynthesisResult r = synth.run(opt);
  verify::DrcOptions drc;
  drc.max_wavelengths = opt.mapping.max_wavelengths;
  const auto violations = verify::check(r.design, drc);
  std::fputs(verify::report(violations).c_str(), stdout);
  return violations.empty() ? 0 : 1;
}

int cmd_floorplan(Args& args) {
  const int nodes = std::stoi(args.value("--nodes", "16"));
  const std::string out = args.value("--out");
  if (!args.report_unused()) return 2;
  const auto fp = netlist::Floorplan::standard(nodes);
  if (out.empty()) {
    netlist::write_floorplan(fp, std::cout);
  } else {
    netlist::save_floorplan(fp, out);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <synth|verify|floorplan> [options]\n", argv[0]);
    return 2;
  }
  try {
    Args args(argc, argv, 2);
    if (std::strcmp(argv[1], "synth") == 0) return cmd_synth(args);
    if (std::strcmp(argv[1], "verify") == 0) return cmd_verify(args);
    if (std::strcmp(argv[1], "floorplan") == 0) return cmd_floorplan(args);
    std::fprintf(stderr, "unknown command: %s\n", argv[1]);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
