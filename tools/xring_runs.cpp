// xring_runs — list, diff, and aggregate the per-run records a store
// directory accumulates (one `<store>/<id>/run.json` per run plus an
// append-only `<store>/index.jsonl`; `xring synth --run-dir` writes them).
//
//   xring_runs list [--store DIR]
//   xring_runs diff A B [--store DIR] [--html OUT.html] [--json OUT.json]
//                       [--time-tolerance R] [--rel-tolerance R]
//                       [--only-prefix P] [--quiet]
//   xring_runs aggregate [--store DIR] [--prefix P] [--json]
//
// `A` and `B` are store ids, run-directory paths, or run.json paths.
// `diff` applies the same metric classification and gate formulas as
// tools/bench_compare (shared via obs/runstore.hpp): quality metrics are
// gated tight in both directions, time-like metrics only on growth beyond
// the tolerance over the noise floor, and solver-internal / resource /
// ignored metrics ride along unjudged.
//
// Exit status: 0 ok (diff: no regressions), 1 diff found regressions,
// 2 usage or I/O error.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/runstore.hpp"

namespace {

using namespace xring::obs;

int usage() {
  std::fprintf(
      stderr,
      "usage: xring_runs list [--store DIR]\n"
      "       xring_runs diff A B [--store DIR] [--html OUT.html]\n"
      "                  [--json OUT.json] [--time-tolerance R]\n"
      "                  [--rel-tolerance R] [--only-prefix P] [--quiet]\n"
      "       xring_runs aggregate [--store DIR] [--prefix P] [--json]\n");
  return 2;
}

std::string format_utc(double unix_time) {
  if (unix_time <= 0) return "-";
  const std::time_t t = static_cast<std::time_t>(unix_time);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &t);
#else
  gmtime_r(&t, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%d %H:%M:%SZ", &tm);
  return buf;
}

int cmd_list(const std::string& store_root) {
  const RunStore store(store_root);
  const auto entries = store.list();
  if (entries.empty()) {
    std::printf("no runs recorded in %s\n", store.root().c_str());
    return 0;
  }
  for (const auto& e : entries) {
    std::printf("%-28s %-21s %s\n", e.id.c_str(),
                format_utc(e.unix_time).c_str(), e.title.c_str());
  }
  return 0;
}

int cmd_diff(const std::string& store_root, const std::string& a_ref,
             const std::string& b_ref, const GateOptions& gate,
             const std::string& only_prefix, const std::string& html_out,
             const std::string& json_out, bool quiet) {
  const RunStore store(store_root);
  RunRecord a, b;
  try {
    a = store.load(a_ref);
    b = store.load(b_ref);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xring_runs: %s\n", e.what());
    return 2;
  }
  const RunDiff d = diff_runs(a, b, gate, only_prefix);
  try {
    if (!html_out.empty()) write_text_file(html_out, run_diff_html(d));
    if (!json_out.empty()) write_text_file(json_out, run_diff_json(d));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xring_runs: %s\n", e.what());
    return 2;
  }
  for (const MetricDelta& md : d.deltas) {
    if (md.regressed) {
      std::printf("REGRESSION %s: %.12g -> %.12g\n", md.name.c_str(), md.a,
                  md.b);
    }
  }
  if (!quiet || d.regressions > 0 || d.one_sided > 0) {
    std::printf(
        "%s -> %s: %d metrics gated (%d skipped), %d regression(s), "
        "%d one-sided key(s)\n",
        a.id.c_str(), b.id.c_str(), d.compared, d.skipped, d.regressions,
        d.one_sided);
  }
  return d.regressions > 0 ? 1 : 0;
}

int cmd_aggregate(const std::string& store_root, const std::string& prefix,
                  bool as_json) {
  const RunStore store(store_root);
  std::vector<RunRecord> runs;
  for (const auto& e : store.list()) {
    try {
      runs.push_back(store.load(e.id));
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "warning: skipping %s: %s\n", e.id.c_str(),
                   ex.what());
    }
  }
  const auto stats = aggregate_runs(runs, prefix);
  if (as_json) {
    std::printf("{\n\"runs\": %zu,\n\"metrics\": [", runs.size());
    bool first = true;
    for (const MetricAggregate& a : stats) {
      std::printf("%s\n{\"name\": \"%s\", \"count\": %lld, \"min\": %s, "
                  "\"max\": %s, \"mean\": %s}",
                  first ? "" : ",", json_escape(a.name).c_str(), a.count,
                  json_num(a.min).c_str(), json_num(a.max).c_str(),
                  json_num(a.mean()).c_str());
      first = false;
    }
    std::printf("\n]\n}\n");
  } else {
    std::printf("%zu run(s) in %s\n", runs.size(), store.root().c_str());
    for (const MetricAggregate& a : stats) {
      std::printf("%-40s n=%-4lld min=%-12g max=%-12g mean=%g\n",
                  a.name.c_str(), a.count, a.min, a.max, a.mean());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  std::string store_root = "runs";
  std::vector<std::string> positional;
  GateOptions gate;
  std::string only_prefix, html_out, json_out, agg_prefix;
  bool quiet = false, agg_json = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--store") {
      store_root = value("--store");
    } else if (arg == "--html") {
      html_out = value("--html");
    } else if (arg == "--json" && cmd == "diff") {
      json_out = value("--json");
    } else if (arg == "--json") {
      agg_json = true;
    } else if (arg == "--time-tolerance") {
      gate.time_tolerance = std::strtod(value("--time-tolerance"), nullptr);
    } else if (arg == "--rel-tolerance") {
      gate.rel_tolerance = std::strtod(value("--rel-tolerance"), nullptr);
    } else if (arg == "--only-prefix") {
      only_prefix = value("--only-prefix");
    } else if (arg == "--prefix") {
      agg_prefix = value("--prefix");
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  if (cmd == "list") {
    if (!positional.empty()) return usage();
    return cmd_list(store_root);
  }
  if (cmd == "diff") {
    if (positional.size() != 2) return usage();
    return cmd_diff(store_root, positional[0], positional[1], gate,
                    only_prefix, html_out, json_out, quiet);
  }
  if (cmd == "aggregate") {
    if (!positional.empty()) return usage();
    return cmd_aggregate(store_root, agg_prefix, agg_json);
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return usage();
}
