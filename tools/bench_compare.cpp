// bench_compare — regression gate over two flat metrics JSON reports
// (the BENCH_*.json files written by the table benches and bench_micro).
//
//   bench_compare BASELINE.json CANDIDATE.json [options]
//
// options:
//   --time-tolerance R   time-like metrics may grow up to R× the baseline
//                        before counting as a regression (default: 3.0 —
//                        wall times are machine- and load-dependent)
//   --rel-tolerance R    quality metrics (losses, powers, counts) may drift
//                        relatively by R (default: 1e-6 — the pipeline is
//                        deterministic, so anything beyond rounding noise
//                        is a real behavior change)
//   --only-prefix P      compare only metrics whose name starts with P
//                        (e.g. `--only-prefix mapping.` gates the Step-3
//                        counters alone); one-sided-key notes are filtered
//                        the same way
//   --quiet              print regressions only
//
// The classification and gate formulas live in obs/runstore.hpp
// (classify_metric / time_noise_floor / metric_regressed) and are shared
// with `xring_runs diff`, so the cross-run reporter reproduces this gate
// exactly. Classification by metric name:
//   time-like  `span.*`, `*.real_time_ns`, `*.cpu_time_ns`, `*.total_s`,
//              `*.seconds`, or a last dot-component of `T` (the tables'
//              wall-clock column). Only growth is flagged; getting faster
//              never fails, and sub-noise-floor baselines are not gated.
//   ignored    `*.iterations` (google-benchmark picks the repeat count
//              from the machine's speed) and `*.t_us` timestamps.
//   solver     solver-internal trajectory counters (`lp.pivots`,
//              `lp.iterations.*`, `lp.refactorizations`, `lp.eta_nnz`,
//              `lp.ftran_density.*`, `milp.warm_pivots`,
//              `milp.cold_solves`): deterministic per build but expected to
//              move whenever the LP kernel's pivot path changes, so they
//              float free of the gate. The quality metrics they feed
//              (`milp.incumbent.last`, `ring.*`, table cells) stay gated
//              exactly — that pairing is the contract: the answer may not
//              move even when the path to it does.
//   resource   sampled resource and scheduling telemetry (`mem.*`,
//              `events.*`, `par.*`, `milp.spec_*`): RSS/allocator readings
//              depend on machine and allocator state, and steal counts,
//              queue depths, and speculation launches/hits are genuinely
//              timing-dependent — two identical runs differ. Never gated;
//              they ride along for the human reading the report.
//   quality    everything else; compared tight in both directions.
//
// Only keys present in BOTH files are compared; one-sided keys are
// non-fatal warnings, counted in the summary line even under --quiet
// (renaming a metric should not silently drop it from the gate).
//
// When `span.mapping.total_s` / `span.opening.total_s` /
// `span.analysis.total_s` / `span.verify.drc.total_s` appear in both
// files, the summary line also reports their before → after ratios — the
// Step-3/evaluation hot spans this tool most often gates.
//
// Exit status: 0 all comparisons within tolerance, 1 at least one
// regression, 2 usage or I/O error.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/runstore.hpp"

namespace {

using xring::obs::MetricClass;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) throw std::runtime_error("error reading " + path);
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, candidate_path;
  double time_tolerance = 3.0;
  double rel_tolerance = 1e-6;
  std::string only_prefix;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--time-tolerance") {
      time_tolerance = std::strtod(value("--time-tolerance"), nullptr);
    } else if (arg == "--rel-tolerance") {
      rel_tolerance = std::strtod(value("--rel-tolerance"), nullptr);
    } else if (arg == "--only-prefix") {
      only_prefix = value("--only-prefix");
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (candidate_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE.json CANDIDATE.json "
                 "[--time-tolerance R] [--rel-tolerance R] "
                 "[--only-prefix P] [--quiet]\n");
    return 2;
  }

  std::map<std::string, double> base, cand;
  try {
    base = xring::obs::metrics_from_json(read_file(baseline_path));
    cand = xring::obs::metrics_from_json(read_file(candidate_path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }

  const auto in_scope = [&](const std::string& name) {
    return only_prefix.empty() ||
           name.compare(0, only_prefix.size(), only_prefix) == 0;
  };

  int compared = 0, regressions = 0, skipped = 0, warnings = 0;
  for (const auto& [name, b] : base) {
    if (!in_scope(name)) continue;
    const auto it = cand.find(name);
    if (it == cand.end()) {
      ++warnings;
      if (!quiet) std::printf("warning: %s only in baseline\n", name.c_str());
      continue;
    }
    const double c = it->second;
    const MetricClass cls = xring::obs::classify_metric(name);
    if (cls == MetricClass::kIgnored || cls == MetricClass::kSolverInternal ||
        cls == MetricClass::kResource) {
      ++skipped;
      continue;
    }
    ++compared;
    const xring::obs::GateOptions gate{time_tolerance, rel_tolerance};
    if (!xring::obs::metric_regressed(name, b, c, gate)) continue;
    ++regressions;
    if (std::isnan(b) || std::isnan(c)) {
      // null (NaN) values compare equal only to null.
      std::printf("REGRESSION %s: %s -> %s\n", name.c_str(),
                  std::isnan(b) ? "null" : "number",
                  std::isnan(c) ? "null" : "number");
    } else if (cls == MetricClass::kTimeLike) {
      const double floor = xring::obs::time_noise_floor(name);
      std::printf("REGRESSION %s: %g -> %g (%.2fx > %.2fx tolerance)\n",
                  name.c_str(), b, c, c / std::max(b, floor), time_tolerance);
    } else {
      std::printf("REGRESSION %s: %.12g -> %.12g\n", name.c_str(), b, c);
    }
  }
  for (const auto& [name, c] : cand) {
    if (in_scope(name) && base.find(name) == base.end()) {
      ++warnings;
      if (!quiet) std::printf("warning: %s only in candidate\n", name.c_str());
    }
  }

  // The pipeline hot spans, called out whenever both reports carry them:
  // the quickest read on whether a mapping/opening/analysis change moved
  // the needle.
  std::string hot_spans;
  for (const char* key : {"span.mapping.total_s", "span.opening.total_s",
                          "span.analysis.total_s", "span.verify.drc.total_s"}) {
    const auto b = base.find(key);
    const auto c = cand.find(key);
    if (b == base.end() || c == cand.end() || !in_scope(key)) continue;
    if (std::isnan(b->second) || std::isnan(c->second)) continue;
    char buf[128];
    std::snprintf(buf, sizeof buf, ", %s %.3gs -> %.3gs (%.2fx)", key,
                  b->second, c->second,
                  b->second > 0 ? c->second / b->second : 0.0);
    hot_spans += buf;
  }

  if (!quiet || regressions > 0 || warnings > 0) {
    std::printf("%d metrics compared (%d ignored), %d regression(s), "
                "%d one-sided key warning(s)%s\n",
                compared, skipped, regressions, warnings, hot_spans.c_str());
  }
  return regressions > 0 ? 1 : 0;
}
