#!/usr/bin/env sh
# Full check pass: a sanitizer build (ASan + UBSan) of the whole tree, the
# complete test suite run under it, and the bench regression gate (a fresh
# Table I run diffed against bench/baselines/ with tools/bench_compare).
# Usage:
#
#   tools/run_checks.sh [build-dir]       # default: build-sanitize
#
# The sanitizer build lives in its own directory so it never perturbs the
# regular `build/` tree.
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo/build-sanitize"}

cmake -B "$build_dir" -S "$repo" -DXRING_SANITIZE=address,undefined
cmake --build "$build_dir" -j
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

# Bench regression gate: quality metrics (losses, powers, solver counts)
# must match the committed baseline exactly; wall times get a wide berth
# (sanitizers and CI machines are slow — only order-of-magnitude growth
# fails). Update the baseline intentionally via docs/OBSERVABILITY.md's
# "updating bench baselines" workflow.
echo "== bench regression gate =="
(cd "$build_dir/bench" && ./table1_routers_no_pdn > /dev/null)
"$build_dir/tools/bench_compare" "$repo/bench/baselines/BENCH_table1.json" \
  "$build_dir/bench/BENCH_table1.json" --time-tolerance 25 --quiet
# The mapping.* counters (waveguides, wavelengths, relocations, openings)
# are the occupancy index's bit-identical contract with the brute-force
# Step 3: they must match the committed baseline EXACTLY, with no time
# escape hatch.
"$build_dir/tools/bench_compare" "$repo/bench/baselines/BENCH_table1.json" \
  "$build_dir/bench/BENCH_table1.json" --only-prefix mapping. \
  --rel-tolerance 0 --quiet
# Solver quality gate: the MILP's answers (milp.incumbent.last, node and
# lazy-cut counts) and the realized ring (ring.crossings, ring.length_um)
# must be byte-identical to the baseline. Pivot-path counters (lp.pivots,
# lp.iterations, lp.refactorizations, milp.warm_pivots, ...) float — they
# are classified solver-internal inside bench_compare — so an LP-kernel
# change passes here exactly when it changes how the answer is reached but
# never the answer.
"$build_dir/tools/bench_compare" "$repo/bench/baselines/BENCH_table1.json" \
  "$build_dir/bench/BENCH_table1.json" --only-prefix milp. \
  --rel-tolerance 0 --quiet
"$build_dir/tools/bench_compare" "$repo/bench/baselines/BENCH_table1.json" \
  "$build_dir/bench/BENCH_table1.json" --only-prefix ring. \
  --rel-tolerance 0 --quiet
# table1.*.T wall times ride along under this prefix; give them the same
# wide sanitizer berth as the whole-file gate (a Release-recorded baseline
# vs an ASan run exceeds the default 3x on sub-0.1 s entries).
"$build_dir/tools/bench_compare" "$repo/bench/baselines/BENCH_table1.json" \
  "$build_dir/bench/BENCH_table1.json" --only-prefix table1. \
  --rel-tolerance 0 --time-tolerance 25 --quiet
# Evaluation determinism gate: the indexed analysis engine's counters
# (analysis.signals, analysis.xtalk_rows) are its bit-identical contract
# with the pre-index reference — exact match, like mapping.* above.
"$build_dir/tools/bench_compare" "$repo/bench/baselines/BENCH_table1.json" \
  "$build_dir/bench/BENCH_table1.json" --only-prefix analysis. \
  --rel-tolerance 0 --quiet
echo "bench gate OK"

# ThreadSanitizer pass over the concurrent substrate (its own build tree —
# TSan cannot share objects with ASan). Oversubscribed via XRING_JOBS so
# races surface even on few-core machines.
echo "== thread sanitizer =="
tsan_dir="$repo/build-tsan"
cmake -B "$tsan_dir" -S "$repo" -DXRING_SANITIZE=thread
cmake --build "$tsan_dir" -j
(cd "$tsan_dir/tests" &&
  XRING_JOBS=8 ./test_par &&
  XRING_JOBS=8 ./test_milp_bnb &&
  XRING_JOBS=8 ./test_milp_scale &&
  XRING_JOBS=8 ./test_xring_synthesizer &&
  XRING_JOBS=8 ./test_mapping_index &&
  XRING_JOBS=8 ./test_mapping_fastpath &&
  XRING_JOBS=8 ./test_analysis_fastpath &&
  XRING_JOBS=8 ./test_obs_context)
echo "tsan OK"
