#!/usr/bin/env sh
# Full check pass: a sanitizer build (ASan + UBSan) of the whole tree and
# the complete test suite run under it. Usage:
#
#   tools/run_checks.sh [build-dir]       # default: build-sanitize
#
# The sanitizer build lives in its own directory so it never perturbs the
# regular `build/` tree.
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo/build-sanitize"}

cmake -B "$build_dir" -S "$repo" -DXRING_SANITIZE=address,undefined
cmake --build "$build_dir" -j
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
